// Copyright 2026 The DataCell Authors.
//
// Engine: the public facade of MonetDB/DataCell (Fig. 1). Owns the catalog,
// the stream baskets, the scheduler, and the receptor/emitter fleets, and
// drives the SQL stack:
//
//   Engine dc;
//   dc.Execute("CREATE STREAM trades (ts timestamp, sym string, px double)");
//   dc.Execute("CREATE TABLE limits (sym string, cap double)");
//   auto q = dc.SubmitContinuous(
//       "SELECT sym, avg(px) FROM trades [RANGE 60 SECONDS SLIDE 10 SECONDS] "
//       "GROUP BY sym", {.mode = ExecMode::kIncremental});
//   dc.PushRow("trades", {...});
//   ... results arrive via the query's emitter sink (or TakeResults()).
//
// One-time queries (`Query`) run through the identical binder/optimizer/
// compiler/executor stack — the paper's "two query paradigms in one
// processing fabric".

#ifndef DATACELL_CORE_ENGINE_H_
#define DATACELL_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/emitter.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "core/sharing.h"
#include "monitor/metrics.h"
#include "plan/explain.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/sync.h"

namespace dc {

struct EngineOptions {
  /// Scheduler worker threads. 0 = synchronous mode: no threads anywhere;
  /// the caller drives execution with Pump() (deterministic, for tests).
  int scheduler_workers = 2;

  /// Ready-queue shards for the scheduler; factory id picks the home
  /// shard. 0 = one shard per worker. More shards than workers spreads
  /// lock contention further (stealing keeps them all drained).
  int scheduler_shards = 0;

  /// Idle scheduler workers steal enabled factories from other shards'
  /// ready queues. Leave on; off is for measuring the stealing benefit.
  bool scheduler_work_stealing = true;

  /// Capacity bound applied to every stream basket (CREATE STREAM):
  /// producers — receptors, PushRow/PushColumns — block when a basket is
  /// full until its queries consume, keeping engine RSS bounded at any
  /// ingest rate. Pushes fail fast with ResourceExhausted instead of
  /// blocking when waiting could never succeed: a full stream no query
  /// reads, or any full stream in synchronous mode (only the pushing
  /// thread could Pump()). The
  /// default is generous (tuples are consumed long before it bites);
  /// {0, 0} restores unbounded pre-backpressure behavior.
  /// Query output baskets stay unbounded: they are drained by emitters,
  /// and blocking a factory mid-fire would stall the scheduler.
  BasketLimits basket_limits{/*max_rows=*/1 << 20, /*max_bytes=*/0};

  /// Multi-query sharing (docs/SHARING.md): queries with matching
  /// compiled identities alias one factory, and compatible windowed
  /// prefixes share one basic-window partial store (SharedWindowNode).
  /// Off restores one private factory chain per query — the differential
  /// equivalence suite runs both and asserts identical emissions.
  bool enable_sharing = true;

  /// Durability (docs/DURABILITY.md): with a non-empty `dir`, every
  /// stream basket appends its batch log to `<dir>/<stream>.wal`, DDL and
  /// continuous-query submissions go to `<dir>/catalog.wal`, and
  /// Checkpoint() writes consistent factory-progress snapshots. A fresh
  /// Engine pointed at a populated `dir` recovers: last snapshot + WAL
  /// tail replayed through the normal append path. Empty `dir` (the
  /// default) keeps the engine fully transient.
  struct DurabilityOptions {
    std::string dir;
    /// When basket-WAL appends become durable. The catalog log is always
    /// synced (DDL/submits are rare); checkpoints force-sync everything.
    storage::FsyncPolicy fsync = storage::FsyncPolicy::kInterval;
    int fsync_interval_batches = 64;
    /// > 0: a background thread checkpoints this often (threaded engines
    /// only — synchronous mode stays thread-free; call Checkpoint()
    /// directly). 0 = manual checkpoints only.
    int checkpoint_interval_ms = 0;
    /// File-system abstraction override (crash-injection tests); null
    /// uses the real filesystem. Recovery always reads the real files.
    storage::WalEnv* env = nullptr;
  };
  DurabilityOptions durability;

  /// Event tracing (docs/OBSERVABILITY.md): record scoped spans (factory
  /// fires, basket appends/stalls, emitter drains, steals) into
  /// per-thread ring buffers, dumped via trace::DumpJson() as Chrome
  /// trace_event JSON. Process-wide and refcounted across engines; off
  /// (the default) costs one relaxed atomic load per span site — the
  /// trace_overhead_guard CTest keeps the enabled cost within ~3%.
  bool enable_tracing = false;
};

/// One registered continuous query (introspection snapshot).
struct ContinuousQueryInfo {
  int id = 0;
  std::string name;
  std::string sql;
  ExecMode mode = ExecMode::kFullReeval;
  FactoryStats factory;
  EmitterStats emitter;
  BasketStats out_basket;  // emission buffer occupancy/backlog
  std::vector<std::string> input_streams;
  std::vector<std::string> input_tables;
  /// Queries currently sharing this query's factory (itself included);
  /// 1 when it runs alone. `sharing` is a human-readable note for the
  /// monitor pane: "factory x3", "node pkts#1 x8", or "".
  int shared_with = 1;
  std::string sharing;
  /// Label of the SharedWindowNode serving this query's partials
  /// ("<stream>#<ordinal>"), or "" for non-shared-tail queries.
  std::string shared_node;
  /// Ingest→delivery latency snapshot (p50/p95/p99 via Percentile);
  /// empty until the first delivered emission (docs/OBSERVABILITY.md).
  Histogram latency;
};

/// The DataCell engine.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Catalog& catalog() { return catalog_; }

  // --- DDL / DML / one-time queries ----------------------------------------

  /// Executes CREATE TABLE / CREATE STREAM / INSERT (or a ';' script of
  /// them).
  Status Execute(std::string_view sql);

  /// Runs a one-time SELECT over tables and/or current basket contents
  /// (streams read as-of-now without consuming; window clauses are not
  /// allowed in one-time queries).
  Result<ColumnSet> Query(std::string_view sql);

  /// EXPLAIN: the compiled plan in the given mode, with optimizer report.
  Result<std::string> ExplainSql(std::string_view sql, plan::PlanMode mode);

  // --- Continuous queries -----------------------------------------------------

  struct ContinuousOptions {
    ExecMode mode = ExecMode::kIncremental;
    std::string name;      // defaults to "q<id>"
    Emitter::Sink sink;    // null: results buffered for TakeResults()
  };

  /// Registers a continuous query; returns its id.
  Result<int> SubmitContinuous(std::string_view sql,
                               ContinuousOptions options);
  /// Default options: incremental mode, buffered results.
  Result<int> SubmitContinuous(std::string_view sql);

  Status RemoveContinuous(int query_id);
  /// Note: with sharing enabled, queries aliasing one factory (identical
  /// compiled identity) pause and resume together.
  Status PauseQuery(int query_id);
  Status ResumeQuery(int query_id);

  /// Buffered emissions of a query submitted without a sink.
  Result<std::vector<ColumnSet>> TakeResults(int query_id);

  // --- Stream input -----------------------------------------------------------

  Status PushRow(std::string_view stream, const std::vector<Value>& row);
  Status PushColumns(std::string_view stream,
                     const std::vector<BatPtr>& cols);
  Status Heartbeat(std::string_view stream, Micros event_ts);
  /// Declares end-of-stream (flushes pending windows).
  Status SealStream(std::string_view stream);

  /// Attaches a rate-controlled receptor thread feeding `stream`.
  Result<int> AttachReceptor(std::string_view stream, Receptor::RowGen gen,
                             Receptor::Options options = {});
  Status PauseReceptor(int receptor_id);
  Status ResumeReceptor(int receptor_id);
  /// Blocks until the receptor's source is exhausted.
  Status WaitReceptor(int receptor_id);

  // --- Durability (docs/DURABILITY.md) ----------------------------------------

  /// Writes a consistent snapshot of factory progress and truncates each
  /// basket WAL to the *previous* checkpoint's horizon (so the rotated
  /// snapshot.prev.dc always pairs with a sufficient WAL tail). Serialized
  /// on dur_mu_; safe to call concurrently with ingest and fires.
  /// InvalidArgument when durability is off.
  Status Checkpoint();

  /// What the constructor's recovery pass concluded. OK after a cold
  /// start or a successful replay; an error (and the engine left
  /// transient, with logging disabled) when the on-disk state was
  /// unusable — e.g. every snapshot corrupt after a checkpoint truncated
  /// the WALs. The constructor cannot return a Status; check this after
  /// constructing an engine with durability enabled.
  Status recovery_status() const { return recovery_status_; }

  // --- Driving / introspection -------------------------------------------------

  /// Synchronous mode: fires ready factories and drains emitters until
  /// quiescent. Returns number of factory firings.
  int Pump();

  /// Threaded mode: blocks until no factory is ready/firing and all
  /// emitters drained (bounded by `timeout_ms`). Returns false on timeout.
  bool WaitIdle(int timeout_ms = 10000);

  /// Introspection for the monitor (S8).
  std::vector<ContinuousQueryInfo> Queries() const;
  Result<BasketStats> StreamStats(std::string_view stream) const;
  SchedulerStats SchedStats() const { return scheduler_.Stats(); }
  /// Multi-query sharing snapshot: live shared nodes, per-node subscriber
  /// counts, and cumulative sharing hits (docs/SHARING.md).
  SharingStats GetSharingStats() const;
  Basket* GetBasket(std::string_view stream);
  FactoryPtr GetFactory(int query_id) const;
  std::vector<std::string> StreamNames() const {
    return catalog_.StreamNames();
  }
  /// This engine's metrics registry (docs/OBSERVABILITY.md): per-query
  /// `query.<name>.latency_us` histograms are registered at submit; the
  /// AnalysisPane publishes its sampled series here as gauges. Expose via
  /// metrics().ToJson() / metrics().ToPrometheus().
  monitor::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct QueryEntry {
    int id;
    std::string sql;
    std::string name;
    ExecMode mode;
    FactoryPtr factory;
    std::shared_ptr<Basket> out_basket;
    // Shared so Pump/WaitIdle/TakeResults can snapshot it under mu_ and
    // drain OUTSIDE the lock: sinks run inside Drain() and may re-enter
    // the engine, and a concurrent RemoveContinuous must not leave a
    // drainer holding a dangling pointer.
    std::shared_ptr<Emitter> emitter;
    std::shared_ptr<ResultCollector> collector;  // when no sink given
    /// Sharing registry key of the factory this query subscribes to, or
    /// "" when the factory is privately owned (sharing disabled).
    /// Teardown is refcounted through full_entries_[full_key].
    std::string full_key;
    /// Full compiled identity, always set (unlike full_key, which is ""
    /// with sharing disabled). EXPLAIN matches standing queries on it to
    /// report live latency for an equivalent plan.
    std::string identity_key;
    /// Per-query ingest→delivery histogram (registry name
    /// "query.<name>.latency_us"); the emitter records into it on every
    /// delivery. Kept here so Queries()/EXPLAIN can snapshot it and so
    /// teardown can Remove() it from the registry.
    std::shared_ptr<monitor::HistogramMetric> latency;
    /// Catalog-log submit token (kSubmit/kRemove pairing and the key of
    /// this query's progress in snapshots). 0 = durability off.
    uint64_t dur_token = 0;
  };

  /// One refcounted shared factory (tier F, docs/SHARING.md): every
  /// submitted query publishes its factory here keyed by full compiled
  /// identity; later identical queries alias it (refs++) with their own
  /// emitters on the shared output basket. The factory leaves the
  /// scheduler — and its node subscription, when it is a shared tail —
  /// only when refs hits zero.
  struct SharedFullEntry {
    int factory_id = 0;  // scheduler id (the first subscriber's query id)
    int refs = 0;
    FactoryPtr factory;
    std::shared_ptr<Basket> out_basket;
    std::vector<std::string> out_names;
    SharedWindowNodePtr node;  // set when the factory is a shared tail
    int node_sub = -1;         // engine-owned node subscription
  };

  Status ExecuteOne(const sql::Statement& stmt);
  Result<ColumnSet> RunSelect(const sql::SelectStmt& stmt);
  /// SubmitContinuous body. `restore` is non-null only during recovery
  /// replay: the submit token is taken from the log instead of allocated,
  /// nothing is re-logged, a founded shared node is re-anchored at its
  /// original origin, and progress is applied to the factory BEFORE it
  /// reaches the scheduler (so it can never fire from pre-restore
  /// origins). `snap_progress` is the loaded snapshot's entry for this
  /// token (null when the snapshot predates the submit); it wins over the
  /// kSubmit record's submit-time cursors, and is the ONLY progress an
  /// aliasing replay applies — the founder's own record can be stale when
  /// the founder was removed before the checkpoint.
  Result<int> SubmitInternal(std::string_view sql, ContinuousOptions options,
                             const storage::WalSubmit* restore,
                             const storage::FactoryProgress* snap_progress);
  /// Appends a kSubmit record (token, sql, the given factory progress,
  /// founded-node identity) to the catalog log. `progress` must be
  /// captured before the factory could first fire (pre-AddFactory): a
  /// post-fire cursor would make replay resume past emissions that were
  /// still undrained at the crash. Append failures are logged, not
  /// propagated — the query is already live.
  void LogSubmit(uint64_t token, std::string_view sql,
                 const ContinuousOptions& options,
                 const storage::FactoryProgress& progress,
                 const SharedWindowNodePtr& node);
  /// Constructor-time durability bring-up: creates the directory,
  /// recovers snapshot + WAL tails if present (replaying through the
  /// normal append path), then attaches WAL writers/hooks to every
  /// stream basket and opens the catalog log.
  Status InitDurability();
  /// Opens `<dir>/<name>.wal` (writing a head kReset on a fresh log) and
  /// installs the basket's durability hooks.
  Status AttachStreamWal(const std::string& name,
                         const std::shared_ptr<Basket>& basket);
  /// Background checkpoint thread body (checkpoint_interval_ms > 0).
  void CheckpointLoop();
  /// Drops zero-subscriber shared nodes from the registry (their basket
  /// readers unregister with them).
  void PruneIdleNodesLocked() DC_REQUIRES(share_mu_);
  /// Shared handles to every live emitter, for draining outside mu_.
  std::vector<std::shared_ptr<Emitter>> SnapshotEmitters() const
      DC_EXCLUDES(mu_);
  /// Space-wait budget for PushRow/PushColumns: block in threaded mode,
  /// fail fast in synchronous mode (blocking would self-deadlock — only
  /// the pushing thread could ever Pump()).
  Micros PushTimeout() const;

  const EngineOptions options_;
  Catalog catalog_;
  /// Internally synchronized (kMetrics/kMetricsHistogram, both leaf-side
  /// ranks), hence usable under any engine lock; mutable so const
  /// introspection can resolve handles.
  mutable monitor::MetricsRegistry metrics_;

  // --- Durability state (docs/DURABILITY.md) ---
  /// Non-null iff durability is on AND usable (bring-up failures leave
  /// the engine transient rather than appending to logs it could not
  /// read). Set once in the constructor.
  storage::WalEnv* wal_env_ = nullptr;
  /// True only while the constructor replays logs: logging sites skip
  /// (replay must not re-log) and statement replay skips INSERTs into
  /// streams (their rows replay from the basket WALs instead).
  bool recovering_ = false;
  Status recovery_status_;
  storage::WalCounters wal_counters_;
  std::shared_ptr<monitor::Counter> snapshot_writes_;
  std::shared_ptr<monitor::Counter> snapshot_bytes_;
  std::shared_ptr<monitor::Counter> replayed_records_;
  std::shared_ptr<monitor::Counter> replayed_rows_;
  std::shared_ptr<monitor::Counter> recovery_runs_;
  /// Internally synchronized (kWal); the pointer is set once in the
  /// constructor. Always opened with FsyncPolicy::kAlways.
  std::unique_ptr<storage::WalWriter> catalog_wal_;
  /// label -> origin_seq of shared nodes from the loaded snapshot;
  /// consulted (then discarded) when recovery replay re-founds a node.
  std::map<std::string, uint64_t> restore_node_origins_;

  /// Serializes checkpoints. Ranks below kEmitterDrain (and everything
  /// else a checkpoint touches): Checkpoint() drains emitters and walks
  /// the sharing registry, engine maps, and factories while holding it.
  mutable Mutex dur_mu_{LockRank::kDurability};
  /// Horizons captured at the previous checkpoint — what the NEXT
  /// checkpoint may truncate each basket WAL to, so snapshot.prev.dc
  /// always pairs with a sufficient WAL tail.
  std::map<std::string, uint64_t> last_horizons_ DC_GUARDED_BY(dur_mu_);
  uint64_t next_checkpoint_id_ DC_GUARDED_BY(dur_mu_) = 1;

  /// Background checkpoint thread. Its wait mutex is a leaf (nothing is
  /// ever acquired under it); the thread is stopped FIRST in the
  /// destructor, before any subsystem it checkpoints.
  Mutex ckpt_mu_{LockRank::kLeaf};
  CondVar ckpt_cv_;
  bool ckpt_stop_ DC_GUARDED_BY(ckpt_mu_) = false;
  std::thread ckpt_thread_;

  mutable Mutex mu_{LockRank::kEngine};
  /// Declared before baskets_ so writers outlive the baskets whose hooks
  /// hold raw pointers to them. Writers are internally synchronized
  /// (kWal > kBasket: hooks append under the basket lock); the map itself
  /// is guarded by mu_.
  std::map<std::string, std::unique_ptr<storage::WalWriter>> basket_wals_
      DC_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Basket>> baskets_ DC_GUARDED_BY(mu_);
  std::map<int, QueryEntry> queries_ DC_GUARDED_BY(mu_);
  std::map<int, std::unique_ptr<Receptor>> receptors_ DC_GUARDED_BY(mu_);
  /// Submit token -> query id, for kRemove replay and Remove logging.
  std::map<uint64_t, int> token_to_query_ DC_GUARDED_BY(mu_);
  int next_query_id_ DC_GUARDED_BY(mu_) = 1;
  int next_receptor_id_ DC_GUARDED_BY(mu_) = 1;
  uint64_t next_submit_token_ DC_GUARDED_BY(mu_) = 1;

  // Multi-query sharing registry (docs/SHARING.md). share_mu_ ranks
  // BELOW mu_ (kSharingRegistry < kEngine) because Submit/Remove hold it
  // across their whole bookkeeping — engine map updates (mu_), scheduler
  // registration, node subscription — while factory fires never touch
  // it. Declared after baskets_ so node destructors can still unregister
  // their basket readers during engine teardown.
  mutable Mutex share_mu_{LockRank::kSharingRegistry};
  std::map<std::string, SharedFullEntry> full_entries_
      DC_GUARDED_BY(share_mu_);
  /// Live tier-P nodes per prefix key; one prefix can hold several nodes
  /// with incompatible grids (non-subsumable slides).
  std::map<std::string, std::vector<SharedWindowNodePtr>> prefix_nodes_
      DC_GUARDED_BY(share_mu_);
  uint64_t full_hits_ DC_GUARDED_BY(share_mu_) = 0;
  uint64_t prefix_hits_ DC_GUARDED_BY(share_mu_) = 0;
  int next_node_ord_ DC_GUARDED_BY(share_mu_) = 1;

  // Declared last so it is destroyed first: scheduler entries hold factory
  // references whose destructors unregister basket readers — the baskets
  // (and query entries) must still be alive at that point.
  Scheduler scheduler_;
};

}  // namespace dc

#endif  // DATACELL_CORE_ENGINE_H_
