// Copyright 2026 The DataCell Authors.
//
// Pure window-boundary arithmetic shared by factories and tests.
//
// Conventions (DESIGN.md §4.6):
//  * ROWS windows: emission k covers row sequences
//    [k*slide, k*slide + size); it is complete when the basket's high
//    sequence reaches k*slide + size.
//  * RANGE windows: emission boundaries are event times T = m*slide
//    (m integer); the window ending at T covers event ts in [T-size, T).
//    It is complete when the stream watermark reaches T (timestamps are
//    non-decreasing, so everything below T has arrived).
//  * Basic windows (incremental mode): basic window j covers
//    [j*slide, (j+1)*slide) in the same coordinate space. A window is a
//    whole number of basic windows iff slide divides size; incremental
//    mode requires that (factories fall back to FULL otherwise).

#ifndef DATACELL_CORE_WINDOW_H_
#define DATACELL_CORE_WINDOW_H_

#include <cstdint>

#include "plan/bound.h"

namespace dc {

/// Window-extent math for one WindowSpec.
class WindowMath {
 public:
  explicit WindowMath(plan::WindowSpec spec) : spec_(spec) {}

  const plan::WindowSpec& spec() const { return spec_; }

  /// True when incremental per-basic-window processing applies.
  bool Divisible() const { return spec_.size % spec_.slide == 0; }

  /// Basic windows per full window (Divisible() required).
  int64_t NumBasicWindows() const { return spec_.size / spec_.slide; }

  // --- ROWS windows (coordinates are row sequence numbers) ----------------

  /// End sequence of emission k.
  int64_t RowsWindowEnd(int64_t k) const {
    return k * spec_.slide + spec_.size;
  }
  /// Start sequence of emission k.
  int64_t RowsWindowStart(int64_t k) const { return k * spec_.slide; }
  /// Is emission k complete given the basket high sequence?
  bool RowsReady(int64_t k, uint64_t high_seq) const {
    return static_cast<int64_t>(high_seq) >= RowsWindowEnd(k);
  }

  // --- RANGE windows (coordinates are event timestamps, µs) ---------------

  /// Boundary (window end) of emission index m: T = m*slide.
  int64_t RangeBoundary(int64_t m) const { return m * spec_.slide; }
  /// First emission index whose window contains an event at `first_ts`:
  /// the smallest m with m*slide > first_ts.
  int64_t FirstRangeEmission(int64_t first_ts) const {
    return FloorDiv(first_ts, spec_.slide) + 1;
  }
  /// Is the window ending at boundary m complete given the watermark?
  bool RangeReady(int64_t m, int64_t watermark) const {
    return watermark >= RangeBoundary(m);
  }
  /// Event-ts extent [start, end) of the window ending at boundary m.
  std::pair<int64_t, int64_t> RangeExtent(int64_t m) const {
    return {RangeBoundary(m) - spec_.size, RangeBoundary(m)};
  }

  // --- Basic windows --------------------------------------------------------

  /// Basic-window id covering coordinate x.
  int64_t BasicWindowOf(int64_t x) const { return FloorDiv(x, spec_.slide); }
  /// Extent [start, end) of basic window j.
  std::pair<int64_t, int64_t> BasicWindowExtent(int64_t j) const {
    return {j * spec_.slide, (j + 1) * spec_.slide};
  }
  /// Basic windows [first, last) composing the ROWS emission k / RANGE
  /// emission m (Divisible() required).
  std::pair<int64_t, int64_t> BasicWindowsForRows(int64_t k) const {
    return {k, k + NumBasicWindows()};
  }
  std::pair<int64_t, int64_t> BasicWindowsForRange(int64_t m) const {
    return {m - NumBasicWindows(), m};
  }

 private:
  static int64_t FloorDiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  }

  plan::WindowSpec spec_;
};

}  // namespace dc

#endif  // DATACELL_CORE_WINDOW_H_
