#include "core/receptor.h"

#include <fstream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dc {

Receptor::Receptor(std::string name, Basket* basket, RowGen gen,
                   Options options)
    : name_(std::move(name)),
      basket_(basket),
      gen_(std::move(gen)),
      options_(options) {}

Receptor::~Receptor() { Stop(); }

void Receptor::Start() {
  if (thread_.joinable()) return;
  start_time_.store(SteadyMicros());
  thread_ = std::thread([this] { Run(); });
}

void Receptor::Stop() {
  stop_.store(true);
  pause_cv_.NotifyAll();  // interrupt a pacing sleep
  if (thread_.joinable()) thread_.join();
}

void Receptor::WaitFinished() {
  if (thread_.joinable()) thread_.join();
}

void Receptor::Pause() {
  MutexLock lock(pause_mu_);
  paused_.store(true);
  pause_cv_.NotifyAll();  // interrupt a pacing sleep so the ack is prompt
  // Wait for the ingestion thread to acknowledge (or to have finished):
  // an in-flight batch may still land during this wait, but once Pause()
  // returns nothing more reaches the basket until Resume().
  while (!pause_acked_ && !finished_.load() && thread_.joinable()) {
    pause_cv_.Wait(pause_mu_);
  }
}

void Receptor::Resume() {
  MutexLock lock(pause_mu_);
  paused_.store(false);
  pause_acked_ = false;
}

ReceptorStats Receptor::Stats() const {
  ReceptorStats s;
  s.rows = rows_.load();
  s.batches = batches_.load();
  s.finished = finished_.load();
  s.paused = paused_.load();
  s.parked = parked_.load();
  s.parks = parks_.load();
  s.parked_micros = parked_micros_.load();
  const Micros started = start_time_.load();
  s.running_micros = started == 0 ? 0 : SteadyMicros() - started;
  return s;
}

void Receptor::Run() {
  const Schema& schema = basket_->schema();
  std::vector<Value> row(schema.NumColumns());
  std::vector<BatPtr> batch;
  auto reset_batch = [&] {
    batch.clear();
    for (const ColumnDef& c : schema.columns()) {
      batch.push_back(Bat::MakeEmpty(c.type));
      batch.back()->Reserve(options_.batch_rows);
    }
  };
  reset_batch();

  // Token-based pacing: next_deadline advances by batch_rows/rate per
  // append so bursts average out to the target rate.
  const double rate = options_.rows_per_sec;
  Micros next_deadline = SteadyMicros();
  uint64_t in_batch = 0;
  bool source_done = false;

  // When the basket is full the receptor parks: it retries the append in
  // short slices so a concurrent Pause()/Stop() is honored within one
  // slice. While paused it does not attempt the append at all — Pause()'s
  // contract ("nothing reaches the basket after the ack") must hold even
  // with a batch pending; the batch lands after Resume(), so backpressure
  // never loses tuples.
  constexpr Micros kParkSliceMicros = 5 * kMicrosPerMilli;

  // Pause gate shared by the main loop and the flush park loop: ack the
  // pause and idle briefly. The ack is set only after re-checking paused_
  // under pause_mu_ (Pause/Resume mutate it under that mutex) — acking
  // after a concurrent Resume would let the *next* Pause() return on the
  // stale ack with an append still landing.
  auto ack_pause_and_idle = [&] {
    {
      MutexLock lock(pause_mu_);
      if (paused_.load()) pause_acked_ = true;
    }
    pause_cv_.NotifyAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };

  auto flush = [&]() {
    if (in_batch == 0) return;
    bool counted_park = false;
    // One ingest stamp per batch, taken before the first append attempt:
    // park slices retry with the same stamp, so time spent parked on a
    // full basket counts toward downstream ingest→delivery latency.
    const Micros ingest_us = SteadyMicros();
    while (true) {
      // During a Stop() the pause gate is bypassed (matching the pre-
      // backpressure final flush): the batch gets one bounded append
      // attempt below so shutdown with a non-full basket stays loss-free.
      if (paused_.load() && !stop_.load()) {
        ack_pause_and_idle();
        continue;
      }
      const Micros slice_start = SteadyMicros();
      const Status st = basket_->Append(batch, kParkSliceMicros, ingest_us);
      if (st.ok()) {
        rows_.fetch_add(in_batch);
        batches_.fetch_add(1);
        break;
      }
      if (!st.IsResourceExhausted()) {
        DC_LOG(kError) << "receptor " << name_
                       << " append failed: " << st.ToString();
        break;  // malformed batch: drop it, keep ingesting
      }
      // Only time actually spent against the full basket counts as parked
      // time — a Pause() during the park must not inflate it.
      parked_micros_.fetch_add(SteadyMicros() - slice_start);
      if (stop_.load()) break;  // stopping against a full basket: drop
      if (!counted_park) {
        counted_park = true;
        parks_.fetch_add(1);
        parked_.store(true);
      }
    }
    if (counted_park) parked_.store(false);
    in_batch = 0;
    reset_batch();
  };

  while (!stop_.load() && !source_done) {
    if (paused_.load()) {
      ack_pause_and_idle();
      continue;
    }
    // Fill one batch.
    while (in_batch < options_.batch_rows) {
      if (!gen_(&row)) {
        source_done = true;
        break;
      }
      for (size_t c = 0; c < batch.size(); ++c) {
        auto cast = row[c].CastTo(schema.column(c).type);
        if (!cast.ok()) {
          DC_LOG(kError) << "receptor " << name_ << ": "
                         << cast.status().ToString();
          source_done = true;
          break;
        }
        batch[c]->AppendValue(*cast);
      }
      ++in_batch;
    }
    flush();
    if (rate > 0 && !source_done) {
      next_deadline += static_cast<Micros>(
          options_.batch_rows / rate * kMicrosPerSecond);
      const Micros now = SteadyMicros();
      if (next_deadline > now) {
        // Interruptible pacing sleep: Pause()/Stop() must not have to wait
        // out the full inter-batch gap (batch_rows/rate can be seconds).
        MutexLock lock(pause_mu_);
        while (!paused_.load() && !stop_.load()) {
          const Micros cur = SteadyMicros();
          if (cur >= next_deadline) break;
          pause_cv_.WaitFor(pause_mu_, next_deadline - cur);
        }
      } else if (now - next_deadline > kMicrosPerSecond) {
        next_deadline = now;  // fell behind badly; do not burst-catch-up
      }
    }
  }
  flush();
  {
    // Under pause_mu_ so a concurrent Pause() cannot miss the wakeup.
    MutexLock lock(pause_mu_);
    finished_.store(true);
  }
  pause_cv_.NotifyAll();
  if (options_.seal_on_finish && !stop_.load()) basket_->Seal();
}

Result<Receptor::RowGen> CsvRowGen(const std::string& path,
                                   const Schema& schema) {
  auto file = std::make_shared<std::ifstream>(path);
  if (!file->is_open()) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  const size_t ncols = schema.NumColumns();
  return Receptor::RowGen([file, ncols](std::vector<Value>* row) {
    std::string line;
    while (std::getline(*file, line)) {
      if (line.empty()) continue;
      auto fields = ParseCsvLine(line);
      if (!fields.ok() || fields->size() != ncols) continue;  // skip bad rows
      for (size_t i = 0; i < ncols; ++i) {
        (*row)[i] = Value::Str(std::move((*fields)[i]));
      }
      return true;
    }
    return false;
  });
}

}  // namespace dc
