// Copyright 2026 The DataCell Authors.
//
// Receptor: the per-stream ingestion process (paper §3) — "a separate
// process per stream to listen for new data". Here a receptor is a thread
// pulling rows from an EventSource (generator function or CSV file) at a
// configurable rate and batch-appending them into the stream's basket —
// the same code path a socket-fed receptor would exercise (DESIGN.md §2
// substitutions).
//
// Backpressure: when the basket is bounded (BasketLimits) and full, the
// receptor parks — it retries the append in short interruptible slices so
// Pause()/Stop() stay responsive (the same handshake that makes Pause()
// synchronous), and resumes without tuple loss as soon as readers free
// space. Park episodes and parked time are visible in ReceptorStats.

#ifndef DATACELL_CORE_RECEPTOR_H_
#define DATACELL_CORE_RECEPTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/sync.h"

namespace dc {

/// Receptor statistics (monitor pane: "incoming data rate").
struct ReceptorStats {
  uint64_t rows = 0;
  uint64_t batches = 0;
  bool finished = false;
  bool paused = false;
  /// Backpressure: currently waiting for basket space / total park episodes
  /// / total time spent parked.
  bool parked = false;
  uint64_t parks = 0;
  Micros parked_micros = 0;
  Micros running_micros = 0;
};

/// A rate-controlled ingestion thread for one stream.
class Receptor {
 public:
  /// Produces the next row into `*row` (sized for the basket schema);
  /// returns false when the source is exhausted.
  using RowGen = std::function<bool(std::vector<Value>* row)>;

  struct Options {
    /// Target ingest rate in rows/second; 0 = as fast as possible.
    double rows_per_sec = 0;
    /// Rows per basket append (amortizes locking, like MonetDB's DataCell).
    uint64_t batch_rows = 64;
    /// Seal the basket when the source is exhausted (flushes windows).
    bool seal_on_finish = true;
  };

  Receptor(std::string name, Basket* basket, RowGen gen, Options options);
  ~Receptor();

  const std::string& name() const { return name_; }

  void Start();
  /// Signals the thread to finish and joins it.
  void Stop();
  /// Blocks until the source is exhausted and everything is appended.
  void WaitFinished();

  /// Blocks until the ingestion thread acknowledges the pause: once this
  /// returns, no further rows reach the basket until Resume().
  void Pause();
  void Resume();

  ReceptorStats Stats() const;

 private:
  void Run();

  const std::string name_;
  Basket* const basket_;
  RowGen gen_;
  const Options options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> finished_{false};
  Mutex pause_mu_{LockRank::kReceptorPause};
  CondVar pause_cv_;
  bool pause_acked_ DC_GUARDED_BY(pause_mu_) = false;
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<bool> parked_{false};
  std::atomic<uint64_t> parks_{0};
  std::atomic<int64_t> parked_micros_{0};
  // Written by Start(), read by Stats() from any thread.
  std::atomic<Micros> start_time_{0};
};

/// Builds a RowGen replaying a CSV file against the basket schema.
/// Each line must have one field per column.
Result<Receptor::RowGen> CsvRowGen(const std::string& path,
                                   const Schema& schema);

}  // namespace dc

#endif  // DATACELL_CORE_RECEPTOR_H_
