#include "core/sharing.h"

#include <algorithm>

#include "util/string_util.h"

namespace dc {

SharedWindowNode::SharedWindowNode(
    std::string label, std::shared_ptr<Basket> basket,
    std::shared_ptr<exec::QueryExecutor> executor, bool rows_mode,
    int64_t grid_slide)
    : label_(std::move(label)),
      basket_(std::move(basket)),
      executor_(std::move(executor)),
      rows_mode_(rows_mode),
      grid_slide_(grid_slide) {
  reader_id_ = basket_->RegisterReader(/*from_start=*/true);
  origin_seq_ = basket_->ReaderCursor(reader_id_);
}

SharedWindowNode::~SharedWindowNode() {
  if (reader_id_ >= 0) basket_->UnregisterReader(reader_id_);
}

Status SharedWindowNode::RestoreOrigin(uint64_t origin_seq) {
  MutexLock lock(mu_);
  if (builds_ != 0 || !cache_.empty()) {
    return Status::InvalidArgument(StrFormat(
        "shared node %s: RestoreOrigin after partials were built",
        label_.c_str()));
  }
  // The reader cursor stays where registration put it (at or below the
  // restored origin after a WAL replay); it only pins retention and
  // advances through Release like any other cursor.
  origin_seq_ = origin_seq;
  return Status::OK();
}

int SharedWindowNode::Subscribe() {
  MutexLock lock(mu_);
  const int id = next_sub_++;
  subs_.emplace(id, kUnreleased);
  return id;
}

void SharedWindowNode::Unsubscribe(int sub_id) {
  MutexLock lock(mu_);
  subs_.erase(sub_id);
  // The departed subscriber may have been the one pinning retention.
  if (!subs_.empty()) EvictLocked();
}

int SharedWindowNode::subscribers() const {
  MutexLock lock(mu_);
  return static_cast<int>(subs_.size());
}

Result<exec::StageInput> SharedWindowNode::ReadExtent(int64_t lo,
                                                      int64_t hi) const {
  BasketView view;
  if (rows_mode_) {
    const int64_t origin = static_cast<int64_t>(origin_seq_);
    const int64_t abs_lo = std::max<int64_t>(origin + lo, origin);
    const int64_t abs_hi = std::max<int64_t>(origin + hi, abs_lo);
    view = basket_->Read(static_cast<uint64_t>(abs_lo),
                         static_cast<uint64_t>(abs_hi - abs_lo));
  } else {
    DC_ASSIGN_OR_RETURN(auto range, basket_->SeqRangeForTs(lo, hi));
    const uint64_t seq_lo = std::max(range.first, origin_seq_);
    const uint64_t seq_hi = std::max(range.second, seq_lo);
    view = basket_->Read(seq_lo, seq_hi - seq_lo);
  }
  return exec::StageInput{std::move(view.cols), view.rows};
}

Status SharedWindowNode::EnsureRange(int64_t lo, int64_t hi,
                                     std::vector<PartialPtr>* out,
                                     uint64_t* built, uint64_t* hits,
                                     uint64_t* rows_in) {
  MutexLock lock(mu_);
  const WindowMath gm(GridSpec());
  const int64_t first = gm.BasicWindowOf(lo);
  // Subsumption keeps tail extents grid-aligned; tolerate a ragged end
  // anyway by covering through the last coordinate.
  const int64_t last = lo < hi ? gm.BasicWindowOf(hi - 1) + 1 : first;
  for (int64_t j = first; j < last; ++j) {
    if (auto it = cache_.find(j); it != cache_.end()) {
      out->push_back(it->second);
      ++*hits;
      ++hits_;
      continue;
    }
    const auto [blo, bhi] = gm.BasicWindowExtent(j);
    std::vector<exec::StageInput> raw(1);
    DC_ASSIGN_OR_RETURN(raw[0], ReadExtent(blo, bhi));
    *rows_in += raw[0].rows;
    tuples_in_ += raw[0].rows;
    DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->ComputePartial(raw));
    auto sp = std::make_shared<const exec::Partial>(std::move(p));
    cache_.emplace(j, sp);
    out->push_back(std::move(sp));
    ++*built;
    ++builds_;
  }
  return Status::OK();
}

void SharedWindowNode::Release(int sub_id, int64_t first_needed_bw) {
  MutexLock lock(mu_);
  auto it = subs_.find(sub_id);
  if (it == subs_.end()) return;
  if (first_needed_bw > it->second) it->second = first_needed_bw;
  EvictLocked();
}

void SharedWindowNode::EvictLocked() {
  int64_t min_mark = INT64_MAX;
  for (const auto& [id, mark] : subs_) {
    if (mark == kUnreleased) return;  // a tail still needs everything
    min_mark = std::min(min_mark, mark);
  }
  if (subs_.empty() || min_mark == INT64_MAX) return;
  cache_.erase(cache_.begin(), cache_.lower_bound(min_mark));
  // Advance the shared reader to the first retained grid window's start
  // (the Factory release rule, applied at the fleet minimum).
  if (rows_mode_) {
    if (min_mark <= 0) return;
    basket_->AdvanceReader(
        reader_id_,
        origin_seq_ + static_cast<uint64_t>(min_mark) *
                          static_cast<uint64_t>(grid_slide_));
  } else {
    if (min_mark <= INT64_MIN / grid_slide_ ||
        min_mark >= INT64_MAX / grid_slide_) {
      return;
    }
    const int64_t ts = min_mark * grid_slide_;
    auto range = basket_->SeqRangeForTs(ts, ts + 1);
    if (range.ok()) basket_->AdvanceReader(reader_id_, range->first);
  }
}

SharedNodeStats SharedWindowNode::Stats() const {
  MutexLock lock(mu_);
  SharedNodeStats s;
  s.label = label_;
  s.stream = basket_->name();
  s.subscribers = static_cast<int>(subs_.size());
  s.grid_slide = grid_slide_;
  s.rows = rows_mode_;
  s.partial_builds = builds_;
  s.sharing_hits = hits_;
  s.tuples_in = tuples_in_;
  s.cached_partials = cache_.size();
  for (const auto& [j, p] : cache_) s.cached_bytes += p->MemoryBytes();
  return s;
}

}  // namespace dc
