#include "core/engine.h"

#include "monitor/trace.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dc {

namespace {

// Canonical sharing keys (docs/SHARING.md). The prefix key identifies a
// shareable fragment build: prefix signature, masked-out literal values,
// and execution mode — window geometry deliberately excluded so window
// subsumption can serve several geometries from one node. The full key
// adds the finish signature and the exact geometry: two queries with
// equal full keys are the same factory.
void SharingKeys(const plan::CompiledQuery& cq, ExecMode mode,
                 std::string* prefix_key, std::string* full_key) {
  std::string params;
  for (const std::string& p : cq.sig_params) {
    params += p;
    params += '\x1f';
  }
  *prefix_key = cq.prefix_signature + '\x1e' + params + '\x1e' +
                ExecModeName(mode);
  std::string geom;
  for (const plan::BoundRelation& rel : cq.bound.rels) {
    if (rel.window.has_value()) {
      geom += rel.window->ToString();
      geom += ';';
    }
  }
  *full_key = *prefix_key + '\x1e' + cq.finish_signature + '\x1e' + geom;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      scheduler_(Scheduler::Options{options.scheduler_workers,
                                    options.scheduler_shards,
                                    options.scheduler_work_stealing}) {
  if (options_.enable_tracing) trace::AddEnableRef();
  if (!options_.durability.dir.empty()) {
    wal_env_ = options_.durability.env != nullptr ? options_.durability.env
                                                  : storage::WalEnv::Default();
    wal_counters_.records = metrics_.GetCounter("wal.records");
    wal_counters_.bytes = metrics_.GetCounter("wal.bytes");
    wal_counters_.syncs = metrics_.GetCounter("wal.syncs");
    wal_counters_.truncations = metrics_.GetCounter("wal.truncations");
    snapshot_writes_ = metrics_.GetCounter("snapshot.writes");
    snapshot_bytes_ = metrics_.GetCounter("snapshot.bytes");
    replayed_records_ = metrics_.GetCounter("recovery.replayed_records");
    replayed_rows_ = metrics_.GetCounter("recovery.replayed_rows");
    recovery_runs_ = metrics_.GetCounter("recovery.runs");
    // Recovery runs before the scheduler threads exist, so the replay is
    // single-threaded and deterministic; Pump() stands in for workers.
    recovering_ = true;
    recovery_status_ = InitDurability();
    recovering_ = false;
    restore_node_origins_.clear();
    if (!recovery_status_.ok()) {
      // Refuse partial recovery: run transient rather than append to logs
      // that could not be read back (docs/DURABILITY.md).
      DC_LOG(kError) << "durability disabled, recovery failed: "
                     << recovery_status_.ToString();
      wal_env_ = nullptr;
      catalog_wal_.reset();
    }
  }
  if (options_.scheduler_workers > 0) scheduler_.Start();
  if (wal_env_ != nullptr && options_.durability.checkpoint_interval_ms > 0 &&
      options_.scheduler_workers > 0) {
    ckpt_thread_ = std::thread(&Engine::CheckpointLoop, this);
  }
}

Engine::~Engine() {
  // The checkpoint thread walks every other subsystem; stop it before
  // touching any of them.
  if (ckpt_thread_.joinable()) {
    {
      MutexLock lock(ckpt_mu_);
      ckpt_stop_ = true;
    }
    ckpt_cv_.NotifyAll();
    ckpt_thread_.join();
  }
  scheduler_.Stop();
  // Take ownership of the threaded components under mu_, then stop them
  // OUTSIDE it: Stop() joins threads whose sinks may re-enter the engine,
  // which would deadlock against a held mu_.
  std::map<int, std::unique_ptr<Receptor>> receptors;
  std::vector<std::shared_ptr<Emitter>> emitters;
  {
    MutexLock lock(mu_);
    receptors = std::move(receptors_);
    receptors_.clear();
    for (auto& [id, q] : queries_) {
      if (q.emitter) emitters.push_back(q.emitter);
    }
  }
  for (auto& [id, r] : receptors) r->Stop();
  for (auto& e : emitters) e->Stop();
  // Graceful shutdown keeps the full logs: force the unsynced WAL tails
  // durable so a restart replays everything (fsync=kInterval/kNever lose
  // the tail only on a crash, never on a clean destructor).
  if (wal_env_ != nullptr) {
    if (catalog_wal_ != nullptr) (void)catalog_wal_->Sync();
    MutexLock lock(mu_);
    for (auto& [name, w] : basket_wals_) (void)w->Sync();
  }
  // After everything that might record spans has stopped.
  if (options_.enable_tracing) trace::ReleaseEnableRef();
}

Status Engine::Execute(std::string_view sql) {
  DC_ASSIGN_OR_RETURN(std::vector<sql::Statement> stmts,
                      sql::ParseScript(sql));
  for (const sql::Statement& stmt : stmts) {
    DC_RETURN_NOT_OK(ExecuteOne(stmt));
  }
  // Logged as ONE record on full success. Caveat (docs/DURABILITY.md): a
  // multi-statement script that fails midway logs nothing, so statements
  // that DID apply before the failure are not replayed — submit scripts
  // one statement at a time if partial-failure durability matters.
  // Append failures are logged, not propagated (same treatment as
  // kSubmit/kRemove): every statement already applied, and failing the
  // call would report an error for DDL that is live.
  if (wal_env_ != nullptr && !recovering_) {
    const Status s = catalog_wal_->Append(storage::EncodeStatement(sql));
    if (!s.ok()) {
      DC_LOG(kWarn) << "catalog WAL append failed: " << s.ToString();
    }
  }
  return Status::OK();
}

Status Engine::ExecuteOne(const sql::Statement& stmt) {
  if (std::holds_alternative<sql::CreateStmt>(stmt)) {
    const auto& create = std::get<sql::CreateStmt>(stmt);
    Schema schema;
    for (const auto& [name, type] : create.columns) {
      DC_RETURN_NOT_OK(schema.AddColumn(name, type));
    }
    if (!create.is_stream) {
      DC_RETURN_NOT_OK(catalog_.RegisterTable(
          std::make_shared<Table>(create.name, schema)));
      return Status::OK();
    }
    StreamDef def;
    def.name = create.name;
    def.schema = schema;
    for (size_t i = 0; i < schema.NumColumns(); ++i) {
      if (schema.column(i).type == TypeId::kTs) {
        def.ts_column = i;
        break;  // first TS column is the event time
      }
    }
    DC_RETURN_NOT_OK(catalog_.RegisterStream(def));
    auto basket = std::make_shared<Basket>(create.name, schema, def.ts_column,
                                           options_.basket_limits);
    // No broadcast listener here: the scheduler attaches a targeted arc
    // per continuous query reading this basket (SubmitContinuous).
    {
      MutexLock lock(mu_);
      baskets_[create.name] = basket;
    }
    // A fresh stream opens its WAL immediately; during recovery the
    // writer/hooks attach only after the replay (InitDurability), so
    // replayed appends are not re-logged.
    if (wal_env_ != nullptr && !recovering_) {
      DC_RETURN_NOT_OK(AttachStreamWal(create.name, basket));
    }
    return Status::OK();
  }
  if (std::holds_alternative<sql::InsertStmt>(stmt)) {
    const auto& insert = std::get<sql::InsertStmt>(stmt);
    if (catalog_.IsStream(insert.table)) {
      for (const auto& row : insert.rows) {
        DC_RETURN_NOT_OK(PushRow(insert.table, row));
      }
      return Status::OK();
    }
    DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(insert.table));
    for (const auto& row : insert.rows) {
      DC_RETURN_NOT_OK(table->AppendRow(row));
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "Execute() handles DDL/DML; use Query() or SubmitContinuous() for "
      "SELECT");
}

Result<ColumnSet> Engine::RunSelect(const sql::SelectStmt& stmt) {
  DC_ASSIGN_OR_RETURN(plan::BoundQuery bound, plan::Bind(stmt, catalog_));
  for (const plan::BoundRelation& rel : bound.rels) {
    if (rel.window.has_value()) {
      return Status::InvalidArgument(
          "window clauses require SubmitContinuous()");
    }
  }
  plan::Optimize(&bound);
  DC_ASSIGN_OR_RETURN(plan::CompiledQuery cq,
                      plan::Compile(std::move(bound)));
  exec::QueryExecutor executor(std::move(cq));
  const plan::BoundQuery& q = executor.compiled().bound;
  std::vector<exec::StageInput> raw(q.rels.size());
  for (size_t r = 0; r < q.rels.size(); ++r) {
    if (q.rels[r].is_stream) {
      // One-time over a stream: peek at current basket contents.
      Basket* basket = GetBasket(q.rels[r].name);
      if (basket == nullptr) {
        return Status::Internal("stream basket missing");
      }
      BasketView view = basket->Read(0);
      raw[r] = exec::StageInput{std::move(view.cols), view.rows};
    } else {
      DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(q.rels[r].name));
      const TableVersionPtr snap = table->Snapshot();
      raw[r] = exec::StageInput{snap->cols, snap->NumRows()};
    }
  }
  return executor.ExecuteFull(raw);
}

Result<ColumnSet> Engine::Query(std::string_view sql) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<sql::SelectStmt>(stmt)) {
    return Status::InvalidArgument("Query() expects a SELECT");
  }
  return RunSelect(std::get<sql::SelectStmt>(stmt));
}

Result<std::string> Engine::ExplainSql(std::string_view sql,
                                       plan::PlanMode mode) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<sql::SelectStmt>(stmt)) {
    return Status::InvalidArgument("EXPLAIN expects a SELECT");
  }
  DC_ASSIGN_OR_RETURN(
      plan::BoundQuery bound,
      plan::Bind(std::get<sql::SelectStmt>(stmt), catalog_));
  plan::OptimizerReport report = plan::Optimize(&bound);
  DC_ASSIGN_OR_RETURN(plan::CompiledQuery cq,
                      plan::Compile(std::move(bound)));
  if (mode == plan::PlanMode::kOneTime || !cq.bound.is_continuous) {
    return plan::Explain(cq, mode, &report);
  }

  // Continuous plans: report what the sharing registry would do with
  // this query (docs/SHARING.md) — "shared with N queries".
  const ExecMode exec_mode = mode == plan::PlanMode::kContinuousIncremental
                                 ? ExecMode::kIncremental
                                 : ExecMode::kFullReeval;
  std::string prefix_key, full_key;
  SharingKeys(cq, exec_mode, &prefix_key, &full_key);
  plan::SharingNote note;
  note.enabled = options_.enable_sharing;
  if (note.enabled) {
    MutexLock share(share_mu_);
    if (auto it = full_entries_.find(full_key); it != full_entries_.end()) {
      note.shared_with = it->second.refs;
      note.detail = "factory-level dedup";
    } else if (auto pit = prefix_nodes_.find(prefix_key);
               pit != prefix_nodes_.end()) {
      const plan::BoundQuery& q = cq.bound;
      if (q.rels.size() == 1 && q.rels[0].window.has_value()) {
        const plan::WindowSpec& w = *q.rels[0].window;
        for (const SharedWindowNodePtr& n : pit->second) {
          if (w.slide > 0 && w.size % w.slide == 0 &&
              n->Compatible(w.rows, w.slide)) {
            note.shared_with = n->subscribers();
            note.detail = StrFormat("window node %s", n->label().c_str());
            break;
          }
        }
      }
    }
  }
  // Observed ingest→delivery latency of standing queries with this exact
  // compiled identity (merged across duplicates submitted under different
  // names). mu_ after share_mu_ matches the engine lock order.
  {
    MutexLock lock(mu_);
    Histogram merged;
    for (const auto& [id, qe] : queries_) {
      if (qe.identity_key == full_key && qe.latency != nullptr) {
        merged.Merge(qe.latency->Snapshot());
      }
    }
    if (merged.count() > 0) note.latency = merged.Summary();
  }
  return plan::Explain(cq, mode, &report, &note);
}

Result<int> Engine::SubmitContinuous(std::string_view sql) {
  return SubmitInternal(sql, ContinuousOptions{}, nullptr, nullptr);
}

Result<int> Engine::SubmitContinuous(std::string_view sql,
                                     ContinuousOptions options) {
  return SubmitInternal(sql, std::move(options), nullptr, nullptr);
}

Result<int> Engine::SubmitInternal(std::string_view sql,
                                   ContinuousOptions options,
                                   const storage::WalSubmit* restore,
                                   const storage::FactoryProgress* snap_progress) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<sql::SelectStmt>(stmt)) {
    return Status::InvalidArgument("SubmitContinuous() expects a SELECT");
  }
  DC_ASSIGN_OR_RETURN(
      plan::BoundQuery bound,
      plan::Bind(std::get<sql::SelectStmt>(stmt), catalog_));
  if (!bound.is_continuous) {
    return Status::InvalidArgument(
        "query reads no stream; use Query() for one-time queries");
  }
  plan::Optimize(&bound);
  DC_ASSIGN_OR_RETURN(plan::CompiledQuery cq,
                      plan::Compile(std::move(bound)));
  auto executor = std::make_shared<exec::QueryExecutor>(std::move(cq));
  const plan::BoundQuery& q = executor->compiled().bound;

  QueryEntry entry;
  {
    MutexLock lock(mu_);
    entry.id = next_query_id_++;
  }
  entry.sql = std::string(sql);
  entry.mode = options.mode;
  const std::string name =
      options.name.empty() ? StrFormat("q%d", entry.id) : options.name;
  entry.name = name;

  std::string prefix_key, full_key;
  SharingKeys(executor->compiled(), options.mode, &prefix_key, &full_key);
  // Full compiled identity, recorded even with sharing off so EXPLAIN can
  // find standing queries with the same plan (entry.full_key stays empty
  // unless the query actually joined the sharing registry).
  entry.identity_key = full_key;

  // Held across all sharing decisions AND the engine/scheduler wiring
  // they produce, so a concurrent submit/remove of a matching query
  // cannot race the refcounts. Fires never take share_mu_, so a
  // RemoveFactory underneath it still drains.
  MutexLock share(share_mu_);

  // Tier F: a standing query with the same full compiled identity —
  // alias its factory; this query only adds a private emitter on the
  // shared output basket.
  if (options_.enable_sharing) {
    auto it = full_entries_.find(full_key);
    if (it != full_entries_.end()) {
      SharedFullEntry& fe = it->second;
      // Recovery: the founding replay restored the shared factory from
      // ITS record, which is stale submit-time origins whenever the
      // founder was removed before the last checkpoint (a removed token
      // has no snapshot entry) — possibly below the WAL truncation
      // floor. An aliasing token that IS in the snapshot re-applies the
      // checkpoint cut here. Safe: nothing fires during catalog replay,
      // so the factory has zero invocations. Done before any refcount or
      // emitter bookkeeping so a failure aborts the replay cleanly.
      if (restore != nullptr && snap_progress != nullptr) {
        DC_RETURN_NOT_OK(fe.factory->RestoreProgress(*snap_progress));
      }
      ++fe.refs;
      ++full_hits_;
      entry.factory = fe.factory;
      entry.out_basket = fe.out_basket;
      entry.full_key = full_key;
      Emitter::Sink sink = options.sink;
      if (!sink) {
        entry.collector = std::make_shared<ResultCollector>();
        sink = entry.collector->AsSink();
      }
      entry.latency =
          metrics_.GetHistogram("query." + name + ".latency_us");
      entry.emitter = std::make_shared<Emitter>(
          name + ".emit", entry.out_basket, fe.out_names, std::move(sink),
          entry.latency);
      if (options_.scheduler_workers > 0) entry.emitter->Start();
      const int id = entry.id;
      const FactoryPtr aliased = entry.factory;
      const SharedWindowNodePtr alias_node = fe.node;
      uint64_t token = 0;
      {
        MutexLock lock(mu_);
        if (wal_env_ != nullptr) {
          token = restore != nullptr ? restore->token : next_submit_token_++;
          if (token >= next_submit_token_) next_submit_token_ = token + 1;
          entry.dur_token = token;
          token_to_query_[token] = id;
        }
        queries_.emplace(id, std::move(entry));
      }
      // The logged progress of an aliasing submit is informational: the
      // factory is already live, so its cursors may sit past undrained
      // emissions — replay therefore never restores from an alias's
      // record, only from the snapshot (above) or the founder's record.
      if (wal_env_ != nullptr && !recovering_) {
        LogSubmit(token, sql, options, aliased->SnapshotProgress(),
                  alias_node);
      }
      return id;
    }
  }

  // Tier P: a single divisible-window incremental stream query can hang
  // off a SharedWindowNode as a merge tail — find a grid-compatible node
  // under this prefix (window subsumption) or found a new one. The node
  // owns the only basket reader; non-divisible windows keep the private
  // fallback-to-full path (FactoryStats::fell_back_to_full).
  SharedWindowNodePtr node;
  int node_sub = -1;
  const bool tier_p_eligible =
      options_.enable_sharing && options.mode == ExecMode::kIncremental &&
      q.rels.size() == 1 && q.rels[0].is_stream &&
      q.rels[0].window.has_value() && q.rels[0].window->slide > 0 &&
      q.rels[0].window->size % q.rels[0].window->slide == 0;
  if (tier_p_eligible) {
    std::shared_ptr<Basket> stream;
    {
      MutexLock lock(mu_);
      auto bit = baskets_.find(q.rels[0].name);
      if (bit == baskets_.end()) return Status::Internal("basket missing");
      stream = bit->second;
    }
    const plan::WindowSpec& w = *q.rels[0].window;
    std::vector<SharedWindowNodePtr>& nodes = prefix_nodes_[prefix_key];
    for (const SharedWindowNodePtr& n : nodes) {
      if (n->basket() == stream.get() && n->Compatible(w.rows, w.slide)) {
        node = n;
        ++prefix_hits_;
        break;
      }
    }
    if (node == nullptr) {
      node = std::make_shared<SharedWindowNode>(
          StrFormat("%s#%d", q.rels[0].name.c_str(), next_node_ord_++),
          stream, executor, w.rows, w.slide);
      nodes.push_back(node);
      if (restore != nullptr && !restore->node_label.empty()) {
        // Node labels are allocated deterministically (next_node_ord_), so
        // an in-order replay must recreate the exact label it logged.
        if (restore->node_label != node->label()) {
          return Status::Internal(StrFormat(
              "recovery divergence: replayed submit founded node %s, log "
              "says %s",
              node->label().c_str(), restore->node_label.c_str()));
        }
        uint64_t origin = restore->node_origin;
        if (auto oit = restore_node_origins_.find(node->label());
            oit != restore_node_origins_.end()) {
          origin = oit->second;
        }
        DC_RETURN_NOT_OK(node->RestoreOrigin(origin));
      }
    }
    node_sub = node->Subscribe();
  }

  // Wire the factory inputs (a shared tail carries no reader of its own).
  std::vector<FactoryInput> inputs(q.rels.size());
  for (size_t r = 0; r < q.rels.size(); ++r) {
    if (q.rels[r].is_stream) {
      Basket* basket = GetBasket(q.rels[r].name);
      if (basket == nullptr) return Status::Internal("basket missing");
      FactoryInput in;
      in.is_stream = true;
      in.basket = basket;
      if (node == nullptr) {
        in.reader_id = basket->RegisterReader(/*from_start=*/true);
      }
      in.window = q.rels[r].window;
      inputs[r] = std::move(in);
    } else {
      DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(q.rels[r].name));
      FactoryInput in;
      in.table = std::move(table);
      inputs[r] = std::move(in);
    }
  }

  // Output basket: result schema.
  Schema out_schema;
  const std::vector<TypeId> out_types = exec::OutputTypes(executor->compiled());
  const std::vector<std::string>& out_names =
      executor->compiled().finish.out_names;
  for (size_t i = 0; i < out_types.size(); ++i) {
    // Result columns may repeat names; make them unique for the schema.
    std::string col = out_names[i];
    while (out_schema.Has(col)) col += "_";
    DC_RETURN_NOT_OK(out_schema.AddColumn(col, out_types[i]));
  }
  entry.out_basket =
      std::make_shared<Basket>(name + ".out", out_schema);

  if (node != nullptr) {
    auto tail = Factory::CreateSharedTail(entry.id, name, executor,
                                          std::move(inputs), entry.out_basket,
                                          node, node_sub);
    if (!tail.ok()) {
      node->Unsubscribe(node_sub);
      PruneIdleNodesLocked();
      return tail.status();
    }
    entry.factory = *std::move(tail);
  } else {
    DC_ASSIGN_OR_RETURN(
        entry.factory,
        Factory::Create(entry.id, name, executor, options.mode,
                        std::move(inputs), entry.out_basket));
  }

  // Recovery: position the factory at its logged progress BEFORE the
  // scheduler can see it — a worker firing against pre-restore origins
  // would consume replayed rows the restored cursors still need. The
  // snapshot's progress (when its checkpoint covered this token) wins
  // over the submit-time cursors in the kSubmit record.
  if (restore != nullptr) {
    storage::FactoryProgress p;
    if (snap_progress != nullptr) {
      p = *snap_progress;
    } else {
      p.origins = restore->origins;
      p.batch_cursor = restore->batch_cursor;
    }
    DC_RETURN_NOT_OK(entry.factory->RestoreProgress(p));
  }

  // Publish the factory for tier-F aliasing by later identical queries.
  if (options_.enable_sharing) {
    SharedFullEntry fe;
    fe.factory_id = entry.id;
    fe.refs = 1;
    fe.factory = entry.factory;
    fe.out_basket = entry.out_basket;
    fe.out_names = out_names;
    fe.node = node;
    fe.node_sub = node_sub;
    full_entries_.emplace(full_key, std::move(fe));
    entry.full_key = full_key;
  }

  Emitter::Sink sink = options.sink;
  if (!sink) {
    entry.collector = std::make_shared<ResultCollector>();
    sink = entry.collector->AsSink();
  }
  entry.latency = metrics_.GetHistogram("query." + name + ".latency_us");
  entry.emitter = std::make_shared<Emitter>(name + ".emit", entry.out_basket,
                                            out_names, std::move(sink),
                                            entry.latency);
  if (options_.scheduler_workers > 0) entry.emitter->Start();

  // Capture the progress to log BEFORE the factory reaches the
  // scheduler: once AddFactory runs, a threaded worker may fire and
  // advance the cursors, and a post-fire cursor in the kSubmit record
  // would make replay resume past emissions that were still undrained
  // in the output basket at the crash — a permanent output gap.
  storage::FactoryProgress logged_progress;
  if (wal_env_ != nullptr && !recovering_) {
    logged_progress = entry.factory->SnapshotProgress();
  }

  // Arcs before registration so no pulse lands in the gap; the targeted
  // kick inside AddFactory covers anything that arrived before the arcs.
  for (Basket* basket : entry.factory->InputBaskets()) {
    scheduler_.AttachArc(basket, entry.id);
  }
  scheduler_.AddFactory(entry.factory);
  const int id = entry.id;
  uint64_t token = 0;
  {
    MutexLock lock(mu_);
    if (wal_env_ != nullptr) {
      token = restore != nullptr ? restore->token : next_submit_token_++;
      if (token >= next_submit_token_) next_submit_token_ = token + 1;
      entry.dur_token = token;
      token_to_query_[token] = id;
    }
    queries_.emplace(id, std::move(entry));
  }
  if (wal_env_ != nullptr && !recovering_) {
    LogSubmit(token, sql, options, logged_progress, node);
  }
  return id;
}

void Engine::LogSubmit(uint64_t token, std::string_view sql,
                       const ContinuousOptions& options,
                       const storage::FactoryProgress& progress,
                       const SharedWindowNodePtr& node) {
  storage::WalSubmit sub;
  sub.token = token;
  sub.sql = std::string(sql);
  sub.mode = static_cast<uint8_t>(options.mode);
  sub.name = options.name;
  // The factory's progress at submit, captured before it could fire:
  // replay restores it before the factory can fire, and any advance past
  // this point is replayed from the basket WALs (or overridden by a later
  // snapshot's progress).
  sub.origins = progress.origins;
  sub.batch_cursor = progress.batch_cursor;
  if (node != nullptr) {
    sub.node_label = node->label();
    sub.node_origin = node->origin_seq();
  }
  const Status s = catalog_wal_->Append(storage::EncodeSubmit(sub));
  if (!s.ok()) {
    DC_LOG(kWarn) << "catalog WAL append failed: " << s.ToString();
  }
}

Status Engine::RemoveContinuous(int query_id) {
  QueryEntry entry;
  {
    // Refcounted teardown (docs/SHARING.md): the factory leaves the
    // scheduler only when its last subscriber unregisters, and its node
    // subscription is dropped — possibly reclaiming the node — in the
    // same critical section, so a concurrent submit cannot observe a
    // half-torn-down entry.
    MutexLock share(share_mu_);
    {
      MutexLock lock(mu_);
      auto it = queries_.find(query_id);
      if (it == queries_.end()) return Status::NotFound("no such query");
      entry = std::move(it->second);
      queries_.erase(it);
      if (entry.dur_token != 0) token_to_query_.erase(entry.dur_token);
    }
    if (!entry.full_key.empty()) {
      auto it = full_entries_.find(entry.full_key);
      if (it != full_entries_.end() && --it->second.refs == 0) {
        SharedFullEntry fe = std::move(it->second);
        full_entries_.erase(it);
        // Blocks on in-flight fires; safe under share_mu_ because fires
        // never take it.
        scheduler_.RemoveFactory(fe.factory_id);
        if (fe.node != nullptr) {
          fe.node->Unsubscribe(fe.node_sub);
          PruneIdleNodesLocked();
        }
      }
    } else {
      scheduler_.RemoveFactory(query_id);
    }
  }
  if (wal_env_ != nullptr && !recovering_ && entry.dur_token != 0) {
    const Status s =
        catalog_wal_->Append(storage::EncodeRemove(entry.dur_token));
    if (!s.ok()) {
      DC_LOG(kWarn) << "catalog WAL append failed: " << s.ToString();
    }
  }
  // Outside both locks: Stop() joins a thread whose sink may re-enter
  // the engine.
  if (entry.emitter) entry.emitter->Stop();
  // Unregister the query's latency series so a later query reusing the
  // name starts from a fresh histogram. Holders of the old shared_ptr
  // (none, after the emitter stopped) would keep recording harmlessly.
  metrics_.Remove("query." + entry.name + ".latency_us");
  return Status::OK();
}

void Engine::PruneIdleNodesLocked() {
  for (auto it = prefix_nodes_.begin(); it != prefix_nodes_.end();) {
    std::erase_if(it->second, [](const SharedWindowNodePtr& n) {
      return n->subscribers() == 0;
    });
    it = it->second.empty() ? prefix_nodes_.erase(it) : std::next(it);
  }
}

SharingStats Engine::GetSharingStats() const {
  MutexLock share(share_mu_);
  SharingStats s;
  s.enabled = options_.enable_sharing;
  s.full_hits = full_hits_;
  s.prefix_hits = prefix_hits_;
  for (const auto& [key, fe] : full_entries_) {
    if (fe.refs > 1) ++s.shared_factories;
  }
  uint64_t node_hits = 0;
  for (const auto& [key, nodes] : prefix_nodes_) {
    for (const SharedWindowNodePtr& n : nodes) {
      s.nodes.push_back(n->Stats());
      node_hits += s.nodes.back().sharing_hits;
      ++s.shared_nodes;
    }
  }
  s.sharing_hits = s.full_hits + s.prefix_hits + node_hits;
  return s;
}

Status Engine::PauseQuery(int query_id) {
  FactoryPtr f = GetFactory(query_id);
  if (f == nullptr) return Status::NotFound("no such query");
  f->Pause();
  return Status::OK();
}

Status Engine::ResumeQuery(int query_id) {
  FactoryPtr f = GetFactory(query_id);
  if (f == nullptr) return Status::NotFound("no such query");
  f->Resume();
  scheduler_.NotifyFactory(query_id);
  return Status::OK();
}

Result<std::vector<ColumnSet>> Engine::TakeResults(int query_id) {
  // Snapshot shared ownership under mu_, drain outside it: the sink runs
  // inside Drain() and may re-enter the engine, and a concurrent
  // RemoveContinuous() must not destroy the emitter under the drainer.
  std::shared_ptr<ResultCollector> collector;
  std::shared_ptr<Emitter> emitter;
  {
    MutexLock lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) return Status::NotFound("no such query");
    collector = it->second.collector;
    emitter = it->second.emitter;
  }
  if (collector == nullptr) {
    return Status::InvalidArgument(
        "query was submitted with a custom sink; results go there");
  }
  if (emitter != nullptr) emitter->Drain();
  return collector->TakeAll();
}

Status Engine::PushRow(std::string_view stream,
                       const std::vector<Value>& row) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) {
    return Status::NotFound(StrFormat("no stream named '%.*s'",
                                      static_cast<int>(stream.size()),
                                      stream.data()));
  }
  return basket->AppendRow(row, PushTimeout());
}

Status Engine::PushColumns(std::string_view stream,
                           const std::vector<BatPtr>& cols) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  return basket->Append(cols, PushTimeout());
}

Micros Engine::PushTimeout() const {
  // In synchronous mode only the pushing thread can drain the basket (via
  // Pump()), so blocking on space would self-deadlock: fail fast with
  // ResourceExhausted instead. Threaded engines block — the scheduler's
  // drain cycle frees space.
  return options_.scheduler_workers > 0 ? Basket::kBlockForever : 0;
}

Status Engine::Heartbeat(std::string_view stream, Micros event_ts) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  basket->Heartbeat(event_ts);
  return Status::OK();
}

Status Engine::SealStream(std::string_view stream) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  basket->Seal();
  return Status::OK();
}

Result<int> Engine::AttachReceptor(std::string_view stream,
                                   Receptor::RowGen gen,
                                   Receptor::Options options) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  MutexLock lock(mu_);
  const int id = next_receptor_id_++;
  auto receptor = std::make_unique<Receptor>(
      StrFormat("%.*s.recv%d", static_cast<int>(stream.size()),
                stream.data(), id),
      basket, std::move(gen), options);
  receptor->Start();
  receptors_.emplace(id, std::move(receptor));
  return id;
}

Status Engine::PauseReceptor(int receptor_id) {
  // Pause() blocks until the ingestion thread acknowledges; resolve the
  // receptor under mu_ but wait outside it (same pattern as WaitReceptor)
  // so other Engine calls are not stalled behind the handshake.
  Receptor* r = nullptr;
  {
    MutexLock lock(mu_);
    auto it = receptors_.find(receptor_id);
    if (it == receptors_.end()) return Status::NotFound("no such receptor");
    r = it->second.get();
  }
  r->Pause();
  return Status::OK();
}

Status Engine::ResumeReceptor(int receptor_id) {
  MutexLock lock(mu_);
  auto it = receptors_.find(receptor_id);
  if (it == receptors_.end()) return Status::NotFound("no such receptor");
  it->second->Resume();
  return Status::OK();
}

Status Engine::WaitReceptor(int receptor_id) {
  Receptor* r = nullptr;
  {
    MutexLock lock(mu_);
    auto it = receptors_.find(receptor_id);
    if (it == receptors_.end()) return Status::NotFound("no such receptor");
    r = it->second.get();
  }
  r->WaitFinished();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Durability (docs/DURABILITY.md).
// ---------------------------------------------------------------------------

Status Engine::InitDurability() {
  const EngineOptions::DurabilityOptions& d = options_.durability;
  DC_RETURN_NOT_OK(wal_env_->CreateDirs(d.dir));

  // 1. Newest complete snapshot, if any (NotFound = cold start).
  storage::SnapshotData snap;
  bool have_snap = false;
  {
    Result<storage::SnapshotData> s = storage::LoadSnapshot(d.dir);
    if (s.ok()) {
      snap = *std::move(s);
      have_snap = true;
    } else if (!s.status().IsNotFound()) {
      return s.status();
    }
  }
  std::map<uint64_t, storage::FactoryProgress> snap_progress;
  for (const storage::SnapshotQuery& q : snap.queries) {
    snap_progress[q.token] = q.progress;
  }
  for (const storage::SnapshotNode& n : snap.nodes) {
    restore_node_origins_[n.label] = n.origin_seq;
  }

  // 2. Catalog log: DDL + submits in original order. A torn tail scans
  // as a shorter valid prefix (records past it were never acknowledged
  // as durable under any fsync policy that synced them).
  const std::string cat_path = d.dir + "/catalog.wal";
  storage::WalScan cat;
  if (Result<storage::WalScan> s = storage::ReadWalFile(cat_path); s.ok()) {
    cat = *std::move(s);
  } else if (!s.status().IsNotFound()) {
    return s.status();
  }
  if (have_snap || !cat.records.empty()) recovery_runs_->Add(1);

  // 3. Replay the catalog log. CREATE STREAM additionally positions the
  // fresh basket at its WAL's head kReset (before any reader registers);
  // INSERTs into streams are skipped — their rows replay from the basket
  // WALs with exact batch boundaries and post-clamp timestamps.
  std::vector<std::string> stream_order;
  std::map<std::string, storage::WalScan> basket_scans;
  // Each basket WAL's kReset start_seq: the truncation floor. Restored
  // cursors below it would read rows the log no longer has (step 5).
  std::map<std::string, uint64_t> replay_base;
  for (const storage::WalRecord& rec : cat.records) {
    switch (rec.type) {
      case storage::WalRecordType::kStatement: {
        DC_ASSIGN_OR_RETURN(std::string stmt_sql,
                            storage::DecodeStatement(rec));
        DC_ASSIGN_OR_RETURN(std::vector<sql::Statement> stmts,
                            sql::ParseScript(stmt_sql));
        for (const sql::Statement& stmt : stmts) {
          if (std::holds_alternative<sql::InsertStmt>(stmt) &&
              catalog_.IsStream(std::get<sql::InsertStmt>(stmt).table)) {
            continue;
          }
          DC_RETURN_NOT_OK(ExecuteOne(stmt));
          if (!std::holds_alternative<sql::CreateStmt>(stmt)) continue;
          const auto& create = std::get<sql::CreateStmt>(stmt);
          if (!create.is_stream) continue;
          stream_order.push_back(create.name);
          Result<storage::WalScan> scan =
              storage::ReadWalFile(d.dir + "/" + create.name + ".wal");
          if (!scan.ok()) {
            if (scan.status().IsNotFound()) continue;
            return scan.status();
          }
          if (scan->records.empty()) continue;
          if (scan->records[0].type != storage::WalRecordType::kReset) {
            return Status::Internal(StrFormat(
                "basket WAL %s does not start with kReset",
                create.name.c_str()));
          }
          DC_ASSIGN_OR_RETURN(storage::WalReset reset,
                              storage::DecodeReset(scan->records[0]));
          replay_base[create.name] = reset.start_seq;
          Basket* basket = GetBasket(create.name);
          if (basket == nullptr) return Status::Internal("basket missing");
          DC_RETURN_NOT_OK(basket->RestoreLogPosition(
              reset.start_seq, reset.next_ordinal, reset.watermark,
              reset.sealed));
          basket_scans[create.name] = *std::move(scan);
        }
        replayed_records_->Add(1);
        break;
      }
      case storage::WalRecordType::kSubmit: {
        DC_ASSIGN_OR_RETURN(storage::WalSubmit sub,
                            storage::DecodeSubmit(rec));
        ContinuousOptions co;
        co.mode = static_cast<ExecMode>(sub.mode);
        co.name = sub.name;
        // Original sinks are process-local and cannot be persisted;
        // recovered queries get buffered collectors (TakeResults).
        // The snapshot's progress for this token (null when the
        // checkpoint predates the submit) supersedes the submit-time
        // cursors in the record — and is the only progress applied when
        // the submit turns out to alias an already-replayed factory.
        const storage::FactoryProgress* sp = nullptr;
        if (auto it = snap_progress.find(sub.token);
            it != snap_progress.end()) {
          sp = &it->second;
        }
        DC_RETURN_NOT_OK(
            SubmitInternal(sub.sql, std::move(co), &sub, sp).status());
        replayed_records_->Add(1);
        break;
      }
      case storage::WalRecordType::kRemove: {
        DC_ASSIGN_OR_RETURN(uint64_t token, storage::DecodeRemove(rec));
        int query_id = -1;
        {
          MutexLock lock(mu_);
          auto it = token_to_query_.find(token);
          if (it == token_to_query_.end()) {
            return Status::Internal(
                StrFormat("kRemove for unknown submit token %llu",
                          static_cast<unsigned long long>(token)));
          }
          query_id = it->second;
        }
        DC_RETURN_NOT_OK(RemoveContinuous(query_id));
        replayed_records_->Add(1);
        break;
      }
      default:
        return Status::Internal("unexpected record type in catalog log");
    }
  }

  // 4. Replay basket data through the normal append path — windows,
  // join indexes, and grid partials rebuild under their own invariants.
  // Pump() after every record keeps the replay deterministic and matches
  // the batch-at-a-time cadence the differential harness drives.
  for (const std::string& name : stream_order) {
    auto sit = basket_scans.find(name);
    if (sit == basket_scans.end()) continue;
    Basket* basket = GetBasket(name);
    if (basket == nullptr) return Status::Internal("basket missing");
    const std::vector<storage::WalRecord>& records = sit->second.records;
    for (size_t i = 1; i < records.size(); ++i) {
      const storage::WalRecord& rec = records[i];
      switch (rec.type) {
        case storage::WalRecordType::kBatch: {
          DC_ASSIGN_OR_RETURN(storage::WalBatch b, storage::DecodeBatch(rec));
          if (b.begin_seq != basket->HighSeq()) {
            return Status::Internal(StrFormat(
                "basket WAL %s not contiguous: batch %llu begins at %llu, "
                "basket is at %llu",
                name.c_str(), static_cast<unsigned long long>(b.ordinal),
                static_cast<unsigned long long>(b.begin_seq),
                static_cast<unsigned long long>(basket->HighSeq())));
          }
          // Only this thread can drain during recovery: fail fast on
          // backpressure and Pump() to make space.
          Status s = basket->Append(b.cols, /*timeout_micros=*/0);
          while (s.IsResourceExhausted()) {
            if (Pump() == 0) {
              return Status::Internal(StrFormat(
                  "replay of %s stalled: basket full and nothing to pump",
                  name.c_str()));
            }
            s = basket->Append(b.cols, /*timeout_micros=*/0);
          }
          DC_RETURN_NOT_OK(s);
          replayed_rows_->Add(b.rows);
          break;
        }
        case storage::WalRecordType::kHeartbeat: {
          DC_ASSIGN_OR_RETURN(int64_t ts, storage::DecodeHeartbeat(rec));
          basket->Heartbeat(ts);
          break;
        }
        case storage::WalRecordType::kSeal:
          basket->Seal();
          break;
        default:
          return Status::Internal(StrFormat(
              "unexpected record type in basket WAL %s", name.c_str()));
      }
      replayed_records_->Add(1);
      Pump();
    }
  }
  Pump();

  // 5. The replayed data must bracket every restored cursor — a WAL that
  // scanned shorter than the progress a snapshot promised is unusable,
  // and a cursor below a WAL's kReset floor references rows truncation
  // already dropped (refuse partial recovery rather than silently
  // mis-emit either way).
  {
    MutexLock lock(mu_);
    for (const auto& [id, q] : queries_) {
      const storage::FactoryProgress p = q.factory->SnapshotProgress();
      const std::vector<FactoryInput>& inputs = q.factory->inputs();
      for (size_t r = 0; r < inputs.size() && r < p.origins.size(); ++r) {
        if (!inputs[r].is_stream) continue;
        if (p.origins[r] > inputs[r].basket->HighSeq()) {
          return Status::Internal(StrFormat(
              "query %s: restored origin %llu beyond replayed data %llu "
              "on %s",
              q.name.c_str(),
              static_cast<unsigned long long>(p.origins[r]),
              static_cast<unsigned long long>(inputs[r].basket->HighSeq()),
              inputs[r].basket->name().c_str()));
        }
        // Origins are window *anchors*, not live cursors — a long-lived
        // query keeps its submit-time anchor while truncation advances,
        // so the anchor itself may sit far below the floor. What must
        // stay above the floor is the next sequence the cursor will
        // actually read: origin + RowsWindowStart(next_emission) for
        // ROWS windows, batch_cursor for per-batch factories. RANGE
        // windows resolve reads by timestamp (clamped at the anchor from
        // below), so the floor does not constrain them.
        uint64_t base = 0;
        if (auto bit = replay_base.find(inputs[r].basket->name());
            bit != replay_base.end()) {
          base = bit->second;
        }
        uint64_t next_read = 0;
        if (!inputs[r].window.has_value()) {
          next_read = p.batch_cursor;
        } else if (inputs[r].window->rows) {
          const WindowMath wm(*inputs[r].window);
          const int64_t k = p.has_next_emission ? p.next_emission : 0;
          next_read =
              p.origins[r] + static_cast<uint64_t>(wm.RowsWindowStart(k));
        } else {
          continue;
        }
        if (next_read < base) {
          return Status::Internal(StrFormat(
              "query %s: restored cursor %llu below the WAL truncation "
              "floor %llu on %s",
              q.name.c_str(),
              static_cast<unsigned long long>(next_read),
              static_cast<unsigned long long>(base),
              inputs[r].basket->name().c_str()));
        }
      }
    }
  }

  // 6. Go live: open the catalog log for appending (truncating any torn
  // tail to the prefix we just replayed), attach writers + hooks to every
  // basket, and adopt the snapshot's horizons as the truncation floor.
  DC_ASSIGN_OR_RETURN(
      catalog_wal_,
      storage::WalWriter::Open(wal_env_, cat_path, storage::FsyncPolicy::kAlways,
                               /*fsync_interval=*/1, wal_counters_));
  std::map<std::string, std::shared_ptr<Basket>> baskets;
  {
    MutexLock lock(mu_);
    baskets = baskets_;
  }
  for (const auto& [name, basket] : baskets) {
    DC_RETURN_NOT_OK(AttachStreamWal(name, basket));
  }
  {
    MutexLock dur(dur_mu_);
    for (const storage::SnapshotBasket& b : snap.baskets) {
      last_horizons_[b.name] = b.horizon;
    }
    next_checkpoint_id_ = snap.checkpoint_id + 1;
  }
  return Status::OK();
}

Status Engine::AttachStreamWal(const std::string& name,
                               const std::shared_ptr<Basket>& basket) {
  const EngineOptions::DurabilityOptions& d = options_.durability;
  const std::string path = d.dir + "/" + name + ".wal";
  bool has_head = false;
  if (Result<storage::WalScan> scan = storage::ReadWalFile(path);
      scan.ok() && !scan->records.empty()) {
    has_head = true;
  }
  DC_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::WalWriter> writer,
      storage::WalWriter::Open(wal_env_, path, d.fsync,
                               d.fsync_interval_batches, wal_counters_));
  if (!has_head) {
    // Fresh log: declare where it starts. (Always the basket's current
    // state — zero on CREATE STREAM, the replayed position if a corrupt
    // log was truncated all the way back to its magic.)
    storage::WalReset reset;
    reset.start_seq = basket->HighSeq();
    reset.next_ordinal = basket->Stats().append_batches;
    reset.watermark = basket->EventWatermark();
    reset.sealed = basket->sealed();
    DC_RETURN_NOT_OK(writer->Append(storage::EncodeReset(reset)));
    DC_RETURN_NOT_OK(writer->Sync());
  }
  // The hooks run inside the basket lock (record order == append order)
  // and only take the writer's kWal mutex above it. Append failures
  // cannot be propagated from a hook; they are logged, and the record is
  // lost — equivalent to a crash before sync for that batch.
  storage::WalWriter* w = writer.get();
  Basket::DurabilityHooks hooks;
  hooks.on_batch = [w](const BasketBatch& b, const std::vector<BatPtr>& cols) {
    const Status s = w->Append(storage::EncodeBatch(
        b.ordinal, b.begin_seq, b.end_seq - b.begin_seq, cols));
    if (!s.ok()) {
      DC_LOG(kWarn) << "WAL append failed: " << s.ToString();
    }
  };
  hooks.on_heartbeat = [w](Micros event_ts) {
    const Status s = w->Append(storage::EncodeHeartbeat(event_ts));
    if (!s.ok()) {
      DC_LOG(kWarn) << "WAL append failed: " << s.ToString();
    }
  };
  hooks.on_seal = [w]() {
    const Status s = w->Append(storage::EncodeSeal());
    if (!s.ok()) {
      DC_LOG(kWarn) << "WAL append failed: " << s.ToString();
    }
  };
  basket->SetDurabilityHooks(std::move(hooks));
  MutexLock lock(mu_);
  basket_wals_[name] = std::move(writer);
  return Status::OK();
}

Status Engine::Checkpoint() {
  if (wal_env_ == nullptr) {
    return Status::InvalidArgument(
        "durability is not enabled (EngineOptions::durability.dir)");
  }
  MutexLock dur(dur_mu_);

  // 1. Capture the cut: per-query progress, node origins, and the basket
  // horizons the NEXT checkpoint may truncate to. Everything the captured
  // progress references was appended (and hence WAL-logged) before this
  // point.
  storage::SnapshotData data;
  data.checkpoint_id = next_checkpoint_id_++;
  std::map<std::string, uint64_t> horizons;
  std::vector<storage::WalWriter*> wals;
  {
    MutexLock share(share_mu_);
    for (const auto& [key, nodes] : prefix_nodes_) {
      for (const SharedWindowNodePtr& n : nodes) {
        data.nodes.push_back({n->label(), n->origin_seq()});
      }
    }
    MutexLock lock(mu_);
    for (const auto& [name, b] : baskets_) {
      const uint64_t horizon = b->DropHorizon();
      horizons[name] = horizon;
      data.baskets.push_back({name, horizon});
    }
    for (const auto& [id, q] : queries_) {
      if (q.dur_token == 0) continue;
      data.queries.push_back({q.dur_token, q.factory->SnapshotProgress()});
    }
    for (const auto& [name, w] : basket_wals_) wals.push_back(w.get());
  }

  // 2. Persist the WALs at least through the cut.
  DC_RETURN_NOT_OK(catalog_wal_->Sync());
  for (storage::WalWriter* w : wals) DC_RETURN_NOT_OK(w->Sync());

  // 3. Deliver everything produced before the cut, so a recovered engine
  // re-emits only at-or-after it (the harness dedups by position).
  for (const auto& e : SnapshotEmitters()) e->Drain();

  // 4. Snapshot (tmp + fsync + rotate current->prev + rename).
  DC_RETURN_NOT_OK(storage::WriteSnapshot(wal_env_, options_.durability.dir,
                                          data, snapshot_bytes_.get()));
  snapshot_writes_->Add(1);

  // 5. Truncate each basket WAL only to the PREVIOUS checkpoint's
  // horizon: if this snapshot is torn by a later crash, snapshot.prev.dc
  // still pairs with a WAL tail that covers it.
  std::vector<std::pair<storage::WalWriter*, uint64_t>> cuts;
  {
    MutexLock lock(mu_);
    for (const auto& [name, w] : basket_wals_) {
      if (auto it = last_horizons_.find(name); it != last_horizons_.end()) {
        cuts.emplace_back(w.get(), it->second);
      }
    }
  }
  for (const auto& [w, horizon] : cuts) {
    DC_RETURN_NOT_OK(w->TruncateTo(horizon));
  }
  last_horizons_ = std::move(horizons);
  return Status::OK();
}

void Engine::CheckpointLoop() {
  const int64_t interval_us =
      static_cast<int64_t>(options_.durability.checkpoint_interval_ms) *
      kMicrosPerMilli;
  while (true) {
    {
      MutexLock lock(ckpt_mu_);
      if (!ckpt_stop_) ckpt_cv_.WaitFor(ckpt_mu_, interval_us);
      if (ckpt_stop_) return;
    }
    const Status s = Checkpoint();
    if (!s.ok()) {
      DC_LOG(kWarn) << "periodic checkpoint failed: " << s.ToString();
    }
  }
}

std::vector<std::shared_ptr<Emitter>> Engine::SnapshotEmitters() const {
  std::vector<std::shared_ptr<Emitter>> emitters;
  MutexLock lock(mu_);
  emitters.reserve(queries_.size());
  for (const auto& [id, q] : queries_) {
    if (q.emitter) emitters.push_back(q.emitter);
  }
  return emitters;
}

int Engine::Pump() {
  int total = 0;
  while (true) {
    const int fires = scheduler_.DrainReady();
    // Drain outside mu_: sinks run inside Drain() and may re-enter the
    // engine (e.g. a sink that pushes derived rows into another stream).
    int drained = 0;
    for (const auto& e : SnapshotEmitters()) drained += e->Drain();
    total += fires;
    if (fires == 0 && drained == 0) break;
  }
  return total;
}

bool Engine::WaitIdle(int timeout_ms) {
  const Micros deadline = SteadyMicros() + timeout_ms * kMicrosPerMilli;
  while (SteadyMicros() < deadline) {
    if (!scheduler_.AnyBusyOrReady()) {
      // Flush emitters (outside mu_ — sinks may re-enter the engine),
      // then double-check quiescence.
      for (const auto& e : SnapshotEmitters()) e->Drain();
      if (!scheduler_.AnyBusyOrReady()) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

std::vector<ContinuousQueryInfo> Engine::Queries() const {
  MutexLock share(share_mu_);
  MutexLock lock(mu_);
  std::vector<ContinuousQueryInfo> out;
  for (const auto& [id, q] : queries_) {
    ContinuousQueryInfo info;
    info.id = id;
    info.name = q.name.empty() ? q.factory->name() : q.name;
    info.sql = q.sql;
    info.mode = q.mode;
    info.factory = q.factory->Stats();
    if (!q.full_key.empty()) {
      auto fit = full_entries_.find(q.full_key);
      if (fit != full_entries_.end()) {
        info.shared_with = fit->second.refs;
        if (fit->second.node != nullptr) {
          info.shared_node = fit->second.node->label();
          info.sharing = StrFormat("node %s x%d",
                                   fit->second.node->label().c_str(),
                                   fit->second.node->subscribers());
        } else if (fit->second.refs > 1) {
          info.sharing = StrFormat("factory x%d", fit->second.refs);
        }
      }
    }
    if (q.latency != nullptr) info.latency = q.latency->Snapshot();
    if (q.emitter) info.emitter = q.emitter->Stats();
    if (q.out_basket) info.out_basket = q.out_basket->Stats();
    for (const FactoryInput& in : q.factory->inputs()) {
      if (in.is_stream) {
        info.input_streams.push_back(in.basket->name());
      } else {
        info.input_tables.push_back(in.table->name());
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

Result<BasketStats> Engine::StreamStats(std::string_view stream) const {
  MutexLock lock(mu_);
  auto it = baskets_.find(std::string(stream));
  if (it == baskets_.end()) return Status::NotFound("no such stream");
  return it->second->Stats();
}

Basket* Engine::GetBasket(std::string_view stream) {
  MutexLock lock(mu_);
  auto it = baskets_.find(std::string(stream));
  return it == baskets_.end() ? nullptr : it->second.get();
}

FactoryPtr Engine::GetFactory(int query_id) const {
  MutexLock lock(mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : it->second.factory;
}

}  // namespace dc
