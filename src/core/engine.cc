#include "core/engine.h"

#include "monitor/trace.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dc {

namespace {

// Canonical sharing keys (docs/SHARING.md). The prefix key identifies a
// shareable fragment build: prefix signature, masked-out literal values,
// and execution mode — window geometry deliberately excluded so window
// subsumption can serve several geometries from one node. The full key
// adds the finish signature and the exact geometry: two queries with
// equal full keys are the same factory.
void SharingKeys(const plan::CompiledQuery& cq, ExecMode mode,
                 std::string* prefix_key, std::string* full_key) {
  std::string params;
  for (const std::string& p : cq.sig_params) {
    params += p;
    params += '\x1f';
  }
  *prefix_key = cq.prefix_signature + '\x1e' + params + '\x1e' +
                ExecModeName(mode);
  std::string geom;
  for (const plan::BoundRelation& rel : cq.bound.rels) {
    if (rel.window.has_value()) {
      geom += rel.window->ToString();
      geom += ';';
    }
  }
  *full_key = *prefix_key + '\x1e' + cq.finish_signature + '\x1e' + geom;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      scheduler_(Scheduler::Options{options.scheduler_workers,
                                    options.scheduler_shards,
                                    options.scheduler_work_stealing}) {
  if (options_.enable_tracing) trace::AddEnableRef();
  if (options_.scheduler_workers > 0) scheduler_.Start();
}

Engine::~Engine() {
  scheduler_.Stop();
  // Take ownership of the threaded components under mu_, then stop them
  // OUTSIDE it: Stop() joins threads whose sinks may re-enter the engine,
  // which would deadlock against a held mu_.
  std::map<int, std::unique_ptr<Receptor>> receptors;
  std::vector<std::shared_ptr<Emitter>> emitters;
  {
    MutexLock lock(mu_);
    receptors = std::move(receptors_);
    receptors_.clear();
    for (auto& [id, q] : queries_) {
      if (q.emitter) emitters.push_back(q.emitter);
    }
  }
  for (auto& [id, r] : receptors) r->Stop();
  for (auto& e : emitters) e->Stop();
  // After everything that might record spans has stopped.
  if (options_.enable_tracing) trace::ReleaseEnableRef();
}

Status Engine::Execute(std::string_view sql) {
  DC_ASSIGN_OR_RETURN(std::vector<sql::Statement> stmts,
                      sql::ParseScript(sql));
  for (const sql::Statement& stmt : stmts) {
    DC_RETURN_NOT_OK(ExecuteOne(stmt));
  }
  return Status::OK();
}

Status Engine::ExecuteOne(const sql::Statement& stmt) {
  if (std::holds_alternative<sql::CreateStmt>(stmt)) {
    const auto& create = std::get<sql::CreateStmt>(stmt);
    Schema schema;
    for (const auto& [name, type] : create.columns) {
      DC_RETURN_NOT_OK(schema.AddColumn(name, type));
    }
    if (!create.is_stream) {
      DC_RETURN_NOT_OK(catalog_.RegisterTable(
          std::make_shared<Table>(create.name, schema)));
      return Status::OK();
    }
    StreamDef def;
    def.name = create.name;
    def.schema = schema;
    for (size_t i = 0; i < schema.NumColumns(); ++i) {
      if (schema.column(i).type == TypeId::kTs) {
        def.ts_column = i;
        break;  // first TS column is the event time
      }
    }
    DC_RETURN_NOT_OK(catalog_.RegisterStream(def));
    auto basket = std::make_shared<Basket>(create.name, schema, def.ts_column,
                                           options_.basket_limits);
    // No broadcast listener here: the scheduler attaches a targeted arc
    // per continuous query reading this basket (SubmitContinuous).
    MutexLock lock(mu_);
    baskets_[create.name] = std::move(basket);
    return Status::OK();
  }
  if (std::holds_alternative<sql::InsertStmt>(stmt)) {
    const auto& insert = std::get<sql::InsertStmt>(stmt);
    if (catalog_.IsStream(insert.table)) {
      for (const auto& row : insert.rows) {
        DC_RETURN_NOT_OK(PushRow(insert.table, row));
      }
      return Status::OK();
    }
    DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(insert.table));
    for (const auto& row : insert.rows) {
      DC_RETURN_NOT_OK(table->AppendRow(row));
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "Execute() handles DDL/DML; use Query() or SubmitContinuous() for "
      "SELECT");
}

Result<ColumnSet> Engine::RunSelect(const sql::SelectStmt& stmt) {
  DC_ASSIGN_OR_RETURN(plan::BoundQuery bound, plan::Bind(stmt, catalog_));
  for (const plan::BoundRelation& rel : bound.rels) {
    if (rel.window.has_value()) {
      return Status::InvalidArgument(
          "window clauses require SubmitContinuous()");
    }
  }
  plan::Optimize(&bound);
  DC_ASSIGN_OR_RETURN(plan::CompiledQuery cq,
                      plan::Compile(std::move(bound)));
  exec::QueryExecutor executor(std::move(cq));
  const plan::BoundQuery& q = executor.compiled().bound;
  std::vector<exec::StageInput> raw(q.rels.size());
  for (size_t r = 0; r < q.rels.size(); ++r) {
    if (q.rels[r].is_stream) {
      // One-time over a stream: peek at current basket contents.
      Basket* basket = GetBasket(q.rels[r].name);
      if (basket == nullptr) {
        return Status::Internal("stream basket missing");
      }
      BasketView view = basket->Read(0);
      raw[r] = exec::StageInput{std::move(view.cols), view.rows};
    } else {
      DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(q.rels[r].name));
      const TableVersionPtr snap = table->Snapshot();
      raw[r] = exec::StageInput{snap->cols, snap->NumRows()};
    }
  }
  return executor.ExecuteFull(raw);
}

Result<ColumnSet> Engine::Query(std::string_view sql) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<sql::SelectStmt>(stmt)) {
    return Status::InvalidArgument("Query() expects a SELECT");
  }
  return RunSelect(std::get<sql::SelectStmt>(stmt));
}

Result<std::string> Engine::ExplainSql(std::string_view sql,
                                       plan::PlanMode mode) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<sql::SelectStmt>(stmt)) {
    return Status::InvalidArgument("EXPLAIN expects a SELECT");
  }
  DC_ASSIGN_OR_RETURN(
      plan::BoundQuery bound,
      plan::Bind(std::get<sql::SelectStmt>(stmt), catalog_));
  plan::OptimizerReport report = plan::Optimize(&bound);
  DC_ASSIGN_OR_RETURN(plan::CompiledQuery cq,
                      plan::Compile(std::move(bound)));
  if (mode == plan::PlanMode::kOneTime || !cq.bound.is_continuous) {
    return plan::Explain(cq, mode, &report);
  }

  // Continuous plans: report what the sharing registry would do with
  // this query (docs/SHARING.md) — "shared with N queries".
  const ExecMode exec_mode = mode == plan::PlanMode::kContinuousIncremental
                                 ? ExecMode::kIncremental
                                 : ExecMode::kFullReeval;
  std::string prefix_key, full_key;
  SharingKeys(cq, exec_mode, &prefix_key, &full_key);
  plan::SharingNote note;
  note.enabled = options_.enable_sharing;
  if (note.enabled) {
    MutexLock share(share_mu_);
    if (auto it = full_entries_.find(full_key); it != full_entries_.end()) {
      note.shared_with = it->second.refs;
      note.detail = "factory-level dedup";
    } else if (auto pit = prefix_nodes_.find(prefix_key);
               pit != prefix_nodes_.end()) {
      const plan::BoundQuery& q = cq.bound;
      if (q.rels.size() == 1 && q.rels[0].window.has_value()) {
        const plan::WindowSpec& w = *q.rels[0].window;
        for (const SharedWindowNodePtr& n : pit->second) {
          if (w.slide > 0 && w.size % w.slide == 0 &&
              n->Compatible(w.rows, w.slide)) {
            note.shared_with = n->subscribers();
            note.detail = StrFormat("window node %s", n->label().c_str());
            break;
          }
        }
      }
    }
  }
  // Observed ingest→delivery latency of standing queries with this exact
  // compiled identity (merged across duplicates submitted under different
  // names). mu_ after share_mu_ matches the engine lock order.
  {
    MutexLock lock(mu_);
    Histogram merged;
    for (const auto& [id, qe] : queries_) {
      if (qe.identity_key == full_key && qe.latency != nullptr) {
        merged.Merge(qe.latency->Snapshot());
      }
    }
    if (merged.count() > 0) note.latency = merged.Summary();
  }
  return plan::Explain(cq, mode, &report, &note);
}

Result<int> Engine::SubmitContinuous(std::string_view sql) {
  return SubmitContinuous(sql, ContinuousOptions{});
}

Result<int> Engine::SubmitContinuous(std::string_view sql,
                                     ContinuousOptions options) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<sql::SelectStmt>(stmt)) {
    return Status::InvalidArgument("SubmitContinuous() expects a SELECT");
  }
  DC_ASSIGN_OR_RETURN(
      plan::BoundQuery bound,
      plan::Bind(std::get<sql::SelectStmt>(stmt), catalog_));
  if (!bound.is_continuous) {
    return Status::InvalidArgument(
        "query reads no stream; use Query() for one-time queries");
  }
  plan::Optimize(&bound);
  DC_ASSIGN_OR_RETURN(plan::CompiledQuery cq,
                      plan::Compile(std::move(bound)));
  auto executor = std::make_shared<exec::QueryExecutor>(std::move(cq));
  const plan::BoundQuery& q = executor->compiled().bound;

  QueryEntry entry;
  {
    MutexLock lock(mu_);
    entry.id = next_query_id_++;
  }
  entry.sql = std::string(sql);
  entry.mode = options.mode;
  const std::string name =
      options.name.empty() ? StrFormat("q%d", entry.id) : options.name;
  entry.name = name;

  std::string prefix_key, full_key;
  SharingKeys(executor->compiled(), options.mode, &prefix_key, &full_key);
  // Full compiled identity, recorded even with sharing off so EXPLAIN can
  // find standing queries with the same plan (entry.full_key stays empty
  // unless the query actually joined the sharing registry).
  entry.identity_key = full_key;

  // Held across all sharing decisions AND the engine/scheduler wiring
  // they produce, so a concurrent submit/remove of a matching query
  // cannot race the refcounts. Fires never take share_mu_, so a
  // RemoveFactory underneath it still drains.
  MutexLock share(share_mu_);

  // Tier F: a standing query with the same full compiled identity —
  // alias its factory; this query only adds a private emitter on the
  // shared output basket.
  if (options_.enable_sharing) {
    auto it = full_entries_.find(full_key);
    if (it != full_entries_.end()) {
      SharedFullEntry& fe = it->second;
      ++fe.refs;
      ++full_hits_;
      entry.factory = fe.factory;
      entry.out_basket = fe.out_basket;
      entry.full_key = full_key;
      Emitter::Sink sink = options.sink;
      if (!sink) {
        entry.collector = std::make_shared<ResultCollector>();
        sink = entry.collector->AsSink();
      }
      entry.latency =
          metrics_.GetHistogram("query." + name + ".latency_us");
      entry.emitter = std::make_shared<Emitter>(
          name + ".emit", entry.out_basket, fe.out_names, std::move(sink),
          entry.latency);
      if (options_.scheduler_workers > 0) entry.emitter->Start();
      const int id = entry.id;
      {
        MutexLock lock(mu_);
        queries_.emplace(id, std::move(entry));
      }
      return id;
    }
  }

  // Tier P: a single divisible-window incremental stream query can hang
  // off a SharedWindowNode as a merge tail — find a grid-compatible node
  // under this prefix (window subsumption) or found a new one. The node
  // owns the only basket reader; non-divisible windows keep the private
  // fallback-to-full path (FactoryStats::fell_back_to_full).
  SharedWindowNodePtr node;
  int node_sub = -1;
  const bool tier_p_eligible =
      options_.enable_sharing && options.mode == ExecMode::kIncremental &&
      q.rels.size() == 1 && q.rels[0].is_stream &&
      q.rels[0].window.has_value() && q.rels[0].window->slide > 0 &&
      q.rels[0].window->size % q.rels[0].window->slide == 0;
  if (tier_p_eligible) {
    std::shared_ptr<Basket> stream;
    {
      MutexLock lock(mu_);
      auto bit = baskets_.find(q.rels[0].name);
      if (bit == baskets_.end()) return Status::Internal("basket missing");
      stream = bit->second;
    }
    const plan::WindowSpec& w = *q.rels[0].window;
    std::vector<SharedWindowNodePtr>& nodes = prefix_nodes_[prefix_key];
    for (const SharedWindowNodePtr& n : nodes) {
      if (n->basket() == stream.get() && n->Compatible(w.rows, w.slide)) {
        node = n;
        ++prefix_hits_;
        break;
      }
    }
    if (node == nullptr) {
      node = std::make_shared<SharedWindowNode>(
          StrFormat("%s#%d", q.rels[0].name.c_str(), next_node_ord_++),
          stream, executor, w.rows, w.slide);
      nodes.push_back(node);
    }
    node_sub = node->Subscribe();
  }

  // Wire the factory inputs (a shared tail carries no reader of its own).
  std::vector<FactoryInput> inputs(q.rels.size());
  for (size_t r = 0; r < q.rels.size(); ++r) {
    if (q.rels[r].is_stream) {
      Basket* basket = GetBasket(q.rels[r].name);
      if (basket == nullptr) return Status::Internal("basket missing");
      FactoryInput in;
      in.is_stream = true;
      in.basket = basket;
      if (node == nullptr) {
        in.reader_id = basket->RegisterReader(/*from_start=*/true);
      }
      in.window = q.rels[r].window;
      inputs[r] = std::move(in);
    } else {
      DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(q.rels[r].name));
      FactoryInput in;
      in.table = std::move(table);
      inputs[r] = std::move(in);
    }
  }

  // Output basket: result schema.
  Schema out_schema;
  const std::vector<TypeId> out_types = exec::OutputTypes(executor->compiled());
  const std::vector<std::string>& out_names =
      executor->compiled().finish.out_names;
  for (size_t i = 0; i < out_types.size(); ++i) {
    // Result columns may repeat names; make them unique for the schema.
    std::string col = out_names[i];
    while (out_schema.Has(col)) col += "_";
    DC_RETURN_NOT_OK(out_schema.AddColumn(col, out_types[i]));
  }
  entry.out_basket =
      std::make_shared<Basket>(name + ".out", out_schema);

  if (node != nullptr) {
    auto tail = Factory::CreateSharedTail(entry.id, name, executor,
                                          std::move(inputs), entry.out_basket,
                                          node, node_sub);
    if (!tail.ok()) {
      node->Unsubscribe(node_sub);
      PruneIdleNodesLocked();
      return tail.status();
    }
    entry.factory = *std::move(tail);
  } else {
    DC_ASSIGN_OR_RETURN(
        entry.factory,
        Factory::Create(entry.id, name, executor, options.mode,
                        std::move(inputs), entry.out_basket));
  }

  // Publish the factory for tier-F aliasing by later identical queries.
  if (options_.enable_sharing) {
    SharedFullEntry fe;
    fe.factory_id = entry.id;
    fe.refs = 1;
    fe.factory = entry.factory;
    fe.out_basket = entry.out_basket;
    fe.out_names = out_names;
    fe.node = node;
    fe.node_sub = node_sub;
    full_entries_.emplace(full_key, std::move(fe));
    entry.full_key = full_key;
  }

  Emitter::Sink sink = options.sink;
  if (!sink) {
    entry.collector = std::make_shared<ResultCollector>();
    sink = entry.collector->AsSink();
  }
  entry.latency = metrics_.GetHistogram("query." + name + ".latency_us");
  entry.emitter = std::make_shared<Emitter>(name + ".emit", entry.out_basket,
                                            out_names, std::move(sink),
                                            entry.latency);
  if (options_.scheduler_workers > 0) entry.emitter->Start();

  // Arcs before registration so no pulse lands in the gap; the targeted
  // kick inside AddFactory covers anything that arrived before the arcs.
  for (Basket* basket : entry.factory->InputBaskets()) {
    scheduler_.AttachArc(basket, entry.id);
  }
  scheduler_.AddFactory(entry.factory);
  const int id = entry.id;
  {
    MutexLock lock(mu_);
    queries_.emplace(id, std::move(entry));
  }
  return id;
}

Status Engine::RemoveContinuous(int query_id) {
  QueryEntry entry;
  {
    // Refcounted teardown (docs/SHARING.md): the factory leaves the
    // scheduler only when its last subscriber unregisters, and its node
    // subscription is dropped — possibly reclaiming the node — in the
    // same critical section, so a concurrent submit cannot observe a
    // half-torn-down entry.
    MutexLock share(share_mu_);
    {
      MutexLock lock(mu_);
      auto it = queries_.find(query_id);
      if (it == queries_.end()) return Status::NotFound("no such query");
      entry = std::move(it->second);
      queries_.erase(it);
    }
    if (!entry.full_key.empty()) {
      auto it = full_entries_.find(entry.full_key);
      if (it != full_entries_.end() && --it->second.refs == 0) {
        SharedFullEntry fe = std::move(it->second);
        full_entries_.erase(it);
        // Blocks on in-flight fires; safe under share_mu_ because fires
        // never take it.
        scheduler_.RemoveFactory(fe.factory_id);
        if (fe.node != nullptr) {
          fe.node->Unsubscribe(fe.node_sub);
          PruneIdleNodesLocked();
        }
      }
    } else {
      scheduler_.RemoveFactory(query_id);
    }
  }
  // Outside both locks: Stop() joins a thread whose sink may re-enter
  // the engine.
  if (entry.emitter) entry.emitter->Stop();
  // Unregister the query's latency series so a later query reusing the
  // name starts from a fresh histogram. Holders of the old shared_ptr
  // (none, after the emitter stopped) would keep recording harmlessly.
  metrics_.Remove("query." + entry.name + ".latency_us");
  return Status::OK();
}

void Engine::PruneIdleNodesLocked() {
  for (auto it = prefix_nodes_.begin(); it != prefix_nodes_.end();) {
    std::erase_if(it->second, [](const SharedWindowNodePtr& n) {
      return n->subscribers() == 0;
    });
    it = it->second.empty() ? prefix_nodes_.erase(it) : std::next(it);
  }
}

SharingStats Engine::GetSharingStats() const {
  MutexLock share(share_mu_);
  SharingStats s;
  s.enabled = options_.enable_sharing;
  s.full_hits = full_hits_;
  s.prefix_hits = prefix_hits_;
  for (const auto& [key, fe] : full_entries_) {
    if (fe.refs > 1) ++s.shared_factories;
  }
  uint64_t node_hits = 0;
  for (const auto& [key, nodes] : prefix_nodes_) {
    for (const SharedWindowNodePtr& n : nodes) {
      s.nodes.push_back(n->Stats());
      node_hits += s.nodes.back().sharing_hits;
      ++s.shared_nodes;
    }
  }
  s.sharing_hits = s.full_hits + s.prefix_hits + node_hits;
  return s;
}

Status Engine::PauseQuery(int query_id) {
  FactoryPtr f = GetFactory(query_id);
  if (f == nullptr) return Status::NotFound("no such query");
  f->Pause();
  return Status::OK();
}

Status Engine::ResumeQuery(int query_id) {
  FactoryPtr f = GetFactory(query_id);
  if (f == nullptr) return Status::NotFound("no such query");
  f->Resume();
  scheduler_.NotifyFactory(query_id);
  return Status::OK();
}

Result<std::vector<ColumnSet>> Engine::TakeResults(int query_id) {
  // Snapshot shared ownership under mu_, drain outside it: the sink runs
  // inside Drain() and may re-enter the engine, and a concurrent
  // RemoveContinuous() must not destroy the emitter under the drainer.
  std::shared_ptr<ResultCollector> collector;
  std::shared_ptr<Emitter> emitter;
  {
    MutexLock lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) return Status::NotFound("no such query");
    collector = it->second.collector;
    emitter = it->second.emitter;
  }
  if (collector == nullptr) {
    return Status::InvalidArgument(
        "query was submitted with a custom sink; results go there");
  }
  if (emitter != nullptr) emitter->Drain();
  return collector->TakeAll();
}

Status Engine::PushRow(std::string_view stream,
                       const std::vector<Value>& row) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) {
    return Status::NotFound(StrFormat("no stream named '%.*s'",
                                      static_cast<int>(stream.size()),
                                      stream.data()));
  }
  return basket->AppendRow(row, PushTimeout());
}

Status Engine::PushColumns(std::string_view stream,
                           const std::vector<BatPtr>& cols) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  return basket->Append(cols, PushTimeout());
}

Micros Engine::PushTimeout() const {
  // In synchronous mode only the pushing thread can drain the basket (via
  // Pump()), so blocking on space would self-deadlock: fail fast with
  // ResourceExhausted instead. Threaded engines block — the scheduler's
  // drain cycle frees space.
  return options_.scheduler_workers > 0 ? Basket::kBlockForever : 0;
}

Status Engine::Heartbeat(std::string_view stream, Micros event_ts) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  basket->Heartbeat(event_ts);
  return Status::OK();
}

Status Engine::SealStream(std::string_view stream) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  basket->Seal();
  return Status::OK();
}

Result<int> Engine::AttachReceptor(std::string_view stream,
                                   Receptor::RowGen gen,
                                   Receptor::Options options) {
  Basket* basket = GetBasket(stream);
  if (basket == nullptr) return Status::NotFound("no such stream");
  MutexLock lock(mu_);
  const int id = next_receptor_id_++;
  auto receptor = std::make_unique<Receptor>(
      StrFormat("%.*s.recv%d", static_cast<int>(stream.size()),
                stream.data(), id),
      basket, std::move(gen), options);
  receptor->Start();
  receptors_.emplace(id, std::move(receptor));
  return id;
}

Status Engine::PauseReceptor(int receptor_id) {
  // Pause() blocks until the ingestion thread acknowledges; resolve the
  // receptor under mu_ but wait outside it (same pattern as WaitReceptor)
  // so other Engine calls are not stalled behind the handshake.
  Receptor* r = nullptr;
  {
    MutexLock lock(mu_);
    auto it = receptors_.find(receptor_id);
    if (it == receptors_.end()) return Status::NotFound("no such receptor");
    r = it->second.get();
  }
  r->Pause();
  return Status::OK();
}

Status Engine::ResumeReceptor(int receptor_id) {
  MutexLock lock(mu_);
  auto it = receptors_.find(receptor_id);
  if (it == receptors_.end()) return Status::NotFound("no such receptor");
  it->second->Resume();
  return Status::OK();
}

Status Engine::WaitReceptor(int receptor_id) {
  Receptor* r = nullptr;
  {
    MutexLock lock(mu_);
    auto it = receptors_.find(receptor_id);
    if (it == receptors_.end()) return Status::NotFound("no such receptor");
    r = it->second.get();
  }
  r->WaitFinished();
  return Status::OK();
}

std::vector<std::shared_ptr<Emitter>> Engine::SnapshotEmitters() const {
  std::vector<std::shared_ptr<Emitter>> emitters;
  MutexLock lock(mu_);
  emitters.reserve(queries_.size());
  for (const auto& [id, q] : queries_) {
    if (q.emitter) emitters.push_back(q.emitter);
  }
  return emitters;
}

int Engine::Pump() {
  int total = 0;
  while (true) {
    const int fires = scheduler_.DrainReady();
    // Drain outside mu_: sinks run inside Drain() and may re-enter the
    // engine (e.g. a sink that pushes derived rows into another stream).
    int drained = 0;
    for (const auto& e : SnapshotEmitters()) drained += e->Drain();
    total += fires;
    if (fires == 0 && drained == 0) break;
  }
  return total;
}

bool Engine::WaitIdle(int timeout_ms) {
  const Micros deadline = SteadyMicros() + timeout_ms * kMicrosPerMilli;
  while (SteadyMicros() < deadline) {
    if (!scheduler_.AnyBusyOrReady()) {
      // Flush emitters (outside mu_ — sinks may re-enter the engine),
      // then double-check quiescence.
      for (const auto& e : SnapshotEmitters()) e->Drain();
      if (!scheduler_.AnyBusyOrReady()) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

std::vector<ContinuousQueryInfo> Engine::Queries() const {
  MutexLock share(share_mu_);
  MutexLock lock(mu_);
  std::vector<ContinuousQueryInfo> out;
  for (const auto& [id, q] : queries_) {
    ContinuousQueryInfo info;
    info.id = id;
    info.name = q.name.empty() ? q.factory->name() : q.name;
    info.sql = q.sql;
    info.mode = q.mode;
    info.factory = q.factory->Stats();
    if (!q.full_key.empty()) {
      auto fit = full_entries_.find(q.full_key);
      if (fit != full_entries_.end()) {
        info.shared_with = fit->second.refs;
        if (fit->second.node != nullptr) {
          info.shared_node = fit->second.node->label();
          info.sharing = StrFormat("node %s x%d",
                                   fit->second.node->label().c_str(),
                                   fit->second.node->subscribers());
        } else if (fit->second.refs > 1) {
          info.sharing = StrFormat("factory x%d", fit->second.refs);
        }
      }
    }
    if (q.latency != nullptr) info.latency = q.latency->Snapshot();
    if (q.emitter) info.emitter = q.emitter->Stats();
    if (q.out_basket) info.out_basket = q.out_basket->Stats();
    for (const FactoryInput& in : q.factory->inputs()) {
      if (in.is_stream) {
        info.input_streams.push_back(in.basket->name());
      } else {
        info.input_tables.push_back(in.table->name());
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

Result<BasketStats> Engine::StreamStats(std::string_view stream) const {
  MutexLock lock(mu_);
  auto it = baskets_.find(std::string(stream));
  if (it == baskets_.end()) return Status::NotFound("no such stream");
  return it->second->Stats();
}

Basket* Engine::GetBasket(std::string_view stream) {
  MutexLock lock(mu_);
  auto it = baskets_.find(std::string(stream));
  return it == baskets_.end() ? nullptr : it->second.get();
}

FactoryPtr Engine::GetFactory(int query_id) const {
  MutexLock lock(mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : it->second.factory;
}

}  // namespace dc
