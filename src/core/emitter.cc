#include "core/emitter.h"

#include "monitor/trace.h"

namespace dc {

Emitter::Emitter(std::string name, std::shared_ptr<Basket> basket,
                 std::vector<std::string> column_names, Sink sink,
                 std::shared_ptr<monitor::HistogramMetric> latency)
    : name_(std::move(name)),
      basket_(std::move(basket)),
      column_names_(std::move(column_names)),
      sink_(std::move(sink)),
      latency_(std::move(latency)) {
  reader_id_ =
      basket_->RegisterReader(/*from_start=*/true, /*track_batches=*/true);
  cursor_ = basket_->ReaderCursor(reader_id_);
  batch_cursor_ = 0;
  listener_id_ = basket_->AddListener([this] {
    {
      MutexLock lock(wake_mu_);
      wake_ = true;
    }
    wake_cv_.NotifyOne();
  });
}

Emitter::~Emitter() {
  Stop();
  // Unhook the wake listener before members die: the basket outlives this
  // emitter (shared ownership) and would otherwise pulse a dangling `this`.
  basket_->RemoveListener(listener_id_);
  basket_->UnregisterReader(reader_id_);
}

int Emitter::Drain() {
  MutexLock lock(drain_mu_);
  trace::Span span("emitter.drain", "emitter");
  int delivered = 0;
  for (const BasketBatch& b : basket_->BatchesAfter(batch_cursor_)) {
    // A zero-row batch reads back as typed empty columns, so the sink sees
    // the emission with its schema intact.
    BasketView view = basket_->Read(cursor_, b.end_seq - cursor_);
    ColumnSet emission;
    emission.names = column_names_;
    emission.cols = std::move(view.cols);
    if (sink_) sink_(emission);
    rows_.fetch_add(view.rows);
    emissions_.fetch_add(1);
    if (view.rows == 0) empty_emissions_.fetch_add(1);
    // Delivery closes the latency clock the batch's ingest stamp opened
    // (for factory outputs: the trigger stamp of the source input).
    if (latency_ != nullptr && b.ingest_us >= 0) {
      latency_->Record(SteadyMicros() - b.ingest_us);
    }
    cursor_ = b.end_seq;
    batch_cursor_ = b.ordinal + 1;
    basket_->AdvanceReaderBatches(reader_id_, cursor_, batch_cursor_);
    ++delivered;
  }
  if (delivered == 0) {
    span.Cancel();  // idle tick, not worth a trace event
  } else {
    span.set_arg(delivered);
  }
  return delivered;
}

void Emitter::Start() {
  if (thread_.joinable()) return;
  stop_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void Emitter::Stop() {
  stop_.store(true);
  wake_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void Emitter::Run() {
  while (!stop_.load()) {
    {
      MutexLock lock(wake_mu_);
      const Micros deadline = SteadyMicros() + 20000;  // 20 ms fallback tick
      while (!wake_ && !stop_.load()) {
        const Micros now = SteadyMicros();
        if (now >= deadline) break;
        wake_cv_.WaitFor(wake_mu_, deadline - now);
      }
      wake_ = false;
    }
    if (stop_.load()) break;
    Drain();
  }
  Drain();  // final flush
}

EmitterStats Emitter::Stats() const {
  EmitterStats s;
  s.emissions = emissions_.load();
  s.empty_emissions = empty_emissions_.load();
  s.rows = rows_.load();
  return s;
}

Emitter::Sink ResultCollector::AsSink() {
  return [this](const ColumnSet& emission) {
    MutexLock lock(mu_);
    emissions_.push_back(emission);
    rows_ += emission.NumRows();
  };
}

std::vector<ColumnSet> ResultCollector::TakeAll() {
  MutexLock lock(mu_);
  std::vector<ColumnSet> out(emissions_.begin(), emissions_.end());
  emissions_.clear();
  return out;
}

size_t ResultCollector::EmissionCount() const {
  MutexLock lock(mu_);
  return emissions_.size();
}

uint64_t ResultCollector::RowCount() const {
  MutexLock lock(mu_);
  return rows_;
}

}  // namespace dc
