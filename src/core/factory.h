// Copyright 2026 The DataCell Authors.
//
// Factory: a continuous query instance (paper §3, "Factories/Queries") —
// the co-routine-like unit the scheduler fires. Each factory encloses a
// compiled (partial) query plan; every Fire() consumes available input from
// its input baskets (and persistent tables), evaluates one emission, and
// appends the result to its output basket.
//
// Execution modes (paper §4):
//   kFullReeval   re-run the whole plan over the full window every slide —
//                 the mode for non-windowed and tumbling-window queries.
//   kIncremental  per-basic-window partial caching + merge (DESIGN.md
//                 §4.6). Requires slide | size; falls back to full
//                 re-evaluation otherwise (recorded in stats).

#ifndef DATACELL_CORE_FACTORY_H_
#define DATACELL_CORE_FACTORY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/basket.h"
#include "core/sharing.h"
#include "core/window.h"
#include "exec/executor.h"
#include "storage/snapshot.h"
#include "storage/table.h"
#include "util/result.h"
#include "util/sync.h"

namespace dc {

/// Continuous execution mode (paper §4: the two re-evaluation scenarios).
enum class ExecMode { kFullReeval, kIncremental };

const char* ExecModeName(ExecMode m);

/// One input arc of the factory (a Petri-net place): a basket or a table.
struct FactoryInput {
  bool is_stream = false;
  // Stream inputs:
  Basket* basket = nullptr;
  int reader_id = -1;
  std::optional<plan::WindowSpec> window;
  // Table inputs:
  TablePtr table;
};

/// Monitoring snapshot (demo's per-query analysis pane).
struct FactoryStats {
  uint64_t invocations = 0;
  /// Emissions appended to the output basket. Zero-row emissions keep
  /// their batch boundary there, so this equals what the emitter delivers
  /// (EmitterStats::emissions once drained).
  uint64_t emissions = 0;
  uint64_t empty_emissions = 0;  // of which zero-row result sets
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  Micros total_exec_micros = 0;
  Micros last_exec_micros = 0;
  uint64_t cached_partials = 0;
  size_t cached_bytes = 0;
  uint64_t fragments_computed = 0;  // basic-window fragments evaluated
  /// Join pairs produced by delta joins (stream-stream incremental mode):
  /// per slide this is the new pairs only, not the full window join. The
  /// pre-aggregated path counts the pairs its group pairings represent
  /// (sum of count_l * count_r), so the number is path-independent.
  uint64_t delta_pairs = 0;
  /// Live rows (raw delta path) or groups (pre-aggregated path) in the
  /// rolling retained-side state across both join sides.
  uint64_t retained_rows = 0;
  /// Expired rows/groups still physically resident awaiting a trim.
  uint64_t retained_dead_rows = 0;
  /// Live entries across both sides' rolling join-key hash indexes.
  uint64_t index_entries = 0;
  /// Shared-tail factories (docs/SHARING.md): basic-window partials this
  /// query needed that were served from its shared node's cache instead
  /// of being rebuilt (fragments_computed counts the ones it built).
  uint64_t sharing_hits = 0;
  bool fell_back_to_full = false;   // incremental requested, not divisible
  bool paused = false;
  std::string last_error;
};

/// A continuous query plan instance driven by the scheduler.
class Factory {
 public:
  /// `inputs` must be ordered like the compiled query's relations.
  /// Supported shapes (validated): one non-windowed stream (+ optional
  /// table), one windowed stream (+ optional table), or two RANGE-windowed
  /// streams with equal slide.
  static Result<std::shared_ptr<Factory>> Create(
      int id, std::string name, std::shared_ptr<exec::QueryExecutor> executor,
      ExecMode mode, std::vector<FactoryInput> inputs,
      std::shared_ptr<Basket> output);

  /// Shared-tail variant (docs/SHARING.md): a per-query merge tail over a
  /// SharedWindowNode. `inputs` must be exactly one windowed stream with
  /// reader_id = -1 (the node owns the only reader); the window must be
  /// divisible (slide | size) and grid-compatible with the node
  /// (node->Compatible). The tail merges the node's grid partials
  /// covering its own window extents and releases consumed grid windows
  /// through `sub_id` — the engine owns the subscription
  /// (node->Subscribe before creation, node->Unsubscribe after the tail
  /// leaves the scheduler).
  static Result<std::shared_ptr<Factory>> CreateSharedTail(
      int id, std::string name, std::shared_ptr<exec::QueryExecutor> executor,
      std::vector<FactoryInput> inputs, std::shared_ptr<Basket> output,
      SharedWindowNodePtr node, int sub_id);

  ~Factory();

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  ExecMode mode() const { return mode_; }
  const exec::QueryExecutor& executor() const { return *executor_; }
  Basket* output() const { return output_.get(); }
  const std::vector<FactoryInput>& inputs() const { return inputs_; }

  /// Distinct stream input baskets — the Petri-net places whose
  /// data-arrival pulses can enable this transition. The engine attaches
  /// one scheduler arc per entry (targeted enablement wiring).
  std::vector<Basket*> InputBaskets() const;

  /// Petri-net firing probe: true when Fire() would make progress.
  bool CheckReady() const;

  /// Performs one emission (or one per-batch evaluation). Errors are
  /// stored (visible in Stats) and disable the factory.
  Status Fire();

  void Pause();
  void Resume();
  bool paused() const;

  FactoryStats Stats() const;

  // --- Durability (docs/DURABILITY.md) --------------------------------------

  /// Captures the recomputation-free progress of this factory: input
  /// origins, the next due emission, the per-batch cursor and the
  /// emission count. Everything else (windows, partial caches, join
  /// indexes, retained delta sides) is rebuilt from replayed basket rows.
  storage::FactoryProgress SnapshotProgress() const;

  /// Recovery: re-applies captured progress to a freshly created factory.
  /// Valid only before the first Fire — the caller (Engine recovery)
  /// restores progress before registering the factory with the scheduler,
  /// so a worker can never fire it against pre-restore origins.
  Status RestoreProgress(const storage::FactoryProgress& p);

 private:
  enum class Shape { kPerBatch, kSingleWindow, kDualWindow, kSharedTail };

  Factory(int id, std::string name,
          std::shared_ptr<exec::QueryExecutor> executor, ExecMode mode,
          std::vector<FactoryInput> inputs, std::shared_ptr<Basket> output,
          SharedWindowNodePtr node = nullptr, int sub_id = -1);

  /// Runs pre-publication from Create, which takes mu_ around the call so
  /// the analysis can check Validate's guarded writes.
  Status Validate() DC_REQUIRES(mu_);

  bool CheckReadyLocked() const DC_REQUIRES(mu_);
  Status FireLocked() DC_REQUIRES(mu_);
  Status FirePerBatch() DC_REQUIRES(mu_);
  Status FireSingleWindow() DC_REQUIRES(mu_);
  Status FireDualWindow() DC_REQUIRES(mu_);
  Status FireSharedTail() DC_REQUIRES(mu_);

  /// Initializes the first RANGE emission boundary from the earliest
  /// resident event; returns false if no data yet.
  bool EnsureRangeOrigin(int rel, int64_t* m) const DC_REQUIRES(mu_);

  /// RANGE-window readiness of one stream side at boundary m, including
  /// the sealed-stream flush rule.
  bool RangeSideReady(int rel, const WindowMath& wm, int64_t m) const
      DC_REQUIRES(mu_);

  /// Reads the stream rows of stream input `rel` covering [lo, hi) in the
  /// window coordinate space (seqs for ROWS, event ts for RANGE).
  Result<exec::StageInput> ReadStreamExtent(int rel, bool rows_mode,
                                            int64_t lo, int64_t hi) const
      DC_REQUIRES(mu_);

  exec::StageInput TableInput(int rel) const DC_REQUIRES(mu_);

  /// Arrival stamp of the input that made windowed emission `emission`
  /// due (docs/OBSERVABILITY.md): the ingest time of a ROWS window's last
  /// row, or of the append/heartbeat that pushed the watermark across a
  /// RANGE boundary (the seal, for sealed-flush emissions). Dual-window
  /// emissions become due when the *later* side crosses, hence the max
  /// across sides. -1 when unknown.
  Micros TriggerStampLocked(int64_t emission) const DC_REQUIRES(mu_);

  /// Appends `result` to the output basket carrying `trigger_us` as the
  /// batch's ingest stamp, so the emitter measures ingest→delivery
  /// latency end to end (-1: the output append stamps itself).
  Status EmitResult(const ColumnSet& result, Micros trigger_us)
      DC_REQUIRES(mu_);

  /// Incremental caches. `compact_` holds per-(rel, basic-window) prejoin
  /// outputs (kept when a second relation needs re-joining); `partials_`
  /// holds mergeable partials keyed by basic window (single windowed
  /// stream: {bw, 0}) or, for stream-stream delta joins, by
  /// {expiry emission, creating emission} — the first component is the
  /// basic-window-driven emission ordinal at which every pair in the
  /// partial has left the window, so expiry evicts whole partials.
  struct PartialKey {
    int64_t a = 0;
    int64_t b = 0;
    bool operator<(const PartialKey& o) const {
      return a != o.a ? a < o.a : b < o.b;
    }
  };

  Result<const exec::StageInput*> EnsureCompact(int rel, bool rows_mode,
                                                int64_t bw) DC_REQUIRES(mu_);
  Result<const exec::Partial*> EnsureSinglePartial(int64_t bw, bool rows_mode,
                                                   uint64_t table_version)
      DC_REQUIRES(mu_);

  /// Reads and prejoins basic window `bw` of stream `rel` (RANGE mode).
  /// Each basic window is prejoined exactly once per side — the result is
  /// appended to the rolling retained-side state, never recomputed.
  Result<exec::StageOutput> PrejoinBasicWindow(int rel, int64_t bw)
      DC_REQUIRES(mu_);

  /// One incremental stream-stream emission: delta-join the newest basic
  /// window against the retained window, bucket new pairs by expiry, and
  /// merge all live partials.
  Status FireDualWindowDelta(int64_t m, const WindowMath& wl,
                             const WindowMath& wr) DC_REQUIRES(mu_);

  /// Row-pairing delta step: appends the new basic window(s) to each
  /// side's rolling concatenation, runs the indexed delta postjoin, and
  /// files the new pairs into expiry-keyed partials.
  Status FireDeltaRows(int64_t m, int64_t lfirst, int64_t rfirst, int64_t nl,
                       int64_t nr) DC_REQUIRES(mu_);

  /// Pre-aggregated delta step (compiled().delta_pre_agg.eligible): pairs
  /// per-key groups instead of rows and accumulates expiry-bucketed
  /// scalar aggregate states directly (product rule).
  Status FireDeltaPreAgg(int64_t m, int64_t lfirst, int64_t rfirst,
                         int64_t nl, int64_t nr) DC_REQUIRES(mu_);

  // Immutable after construction (Validate only reads them): safe without
  // mu_, e.g. for InputBaskets() and the destructor's reader unregistration.
  const int id_;
  const std::string name_;
  std::shared_ptr<exec::QueryExecutor> executor_;
  const ExecMode mode_;
  std::vector<FactoryInput> inputs_;
  std::shared_ptr<Basket> output_;
  /// Shared-tail factories only: the node serving this query's partials
  /// and the engine-owned subscription id used for Release calls.
  const SharedWindowNodePtr node_;
  const int node_sub_ = -1;

  mutable Mutex mu_{LockRank::kFactory};

  Shape shape_ DC_GUARDED_BY(mu_) = Shape::kPerBatch;
  // Relation indices of the stream inputs / the table input.
  int stream_rels_[2] DC_GUARDED_BY(mu_) = {-1, -1};
  int table_rel_ DC_GUARDED_BY(mu_) = -1;
  bool incremental_active_ DC_GUARDED_BY(mu_) = false;
  /// Dual-window delta state: false until the first incremental emission
  /// joined the whole initial window (everything "new"); afterwards each
  /// emission delta-joins only basic window m-1.
  bool delta_seeded_ DC_GUARDED_BY(mu_) = false;

  bool paused_ DC_GUARDED_BY(mu_) = false;
  bool failed_ DC_GUARDED_BY(mu_) = false;
  std::string last_error_ DC_GUARDED_BY(mu_);

  // Per-batch cursor (kPerBatch).
  uint64_t batch_cursor_ DC_GUARDED_BY(mu_) = 0;

  // Window progression (kSingleWindow / kDualWindow); k (ROWS) or
  // m (RANGE), advanced lazily by the readiness probe.
  mutable std::optional<int64_t> next_emission_ DC_GUARDED_BY(mu_);

  // Registration-time cursor per relation slot (window coordinates for
  // ROWS windows are relative to this origin).
  std::vector<uint64_t> origin_seq_ DC_GUARDED_BY(mu_);

  std::map<std::pair<int, int64_t>, exec::StageInput> compact_
      DC_GUARDED_BY(mu_);
  std::map<PartialKey, exec::Partial> partials_ DC_GUARDED_BY(mu_);
  std::map<PartialKey, uint64_t> partial_versions_ DC_GUARDED_BY(mu_);
  std::optional<exec::StageInput> table_compact_ DC_GUARDED_BY(mu_);
  uint64_t table_compact_version_ DC_GUARDED_BY(mu_) = 0;

  /// Rolling retained-side state per join side (kDualWindow incremental):
  /// the row path uses delta_side_, the pre-aggregated path delta_groups_.
  exec::DeltaSideState delta_side_[2] DC_GUARDED_BY(mu_);
  exec::DeltaGroupTrack delta_groups_[2] DC_GUARDED_BY(mu_);
  /// Per aggregate: its index among its side's local aggregates (parallel
  /// to delta_pre_agg.agg_side), or -1 for COUNT(*).
  std::vector<int> preagg_local_ DC_GUARDED_BY(mu_);
  /// Reusable expiry-bucket scratch, indexed expiry - (m + 1); every pair
  /// created at emission m expires in [m + 1, m + min(nl, nr)].
  std::vector<std::vector<Oid>> expiry_rows_ DC_GUARDED_BY(mu_);  // row path
  std::vector<std::vector<ops::AggState>> expiry_states_
      DC_GUARDED_BY(mu_);                               // pre-agg path
  std::vector<uint8_t> expiry_dirty_ DC_GUARDED_BY(mu_);  // pre-agg path

  FactoryStats stats_ DC_GUARDED_BY(mu_);
};

using FactoryPtr = std::shared_ptr<Factory>;

}  // namespace dc

#endif  // DATACELL_CORE_FACTORY_H_
