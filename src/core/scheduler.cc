#include "core/scheduler.h"

#include <algorithm>

#include "monitor/trace.h"
#include "util/clock.h"

#include "util/logging.h"

namespace dc {

Scheduler::Scheduler() : Scheduler(Options{}) {}

Scheduler::Scheduler(Options options) : options_(options) {
  int shards = options_.num_shards;
  if (shards <= 0) shards = std::max(1, options_.num_workers);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

Scheduler::~Scheduler() {
  Stop();
  // Detach pulse listeners so baskets stop calling into this object.
  // Baskets are required to outlive the scheduler (see header).
  std::vector<std::pair<Basket*, int>> listeners;
  {
    WriterLock reg(reg_mu_);
    for (auto& [basket, arcs] : arcs_) {
      if (arcs.listener_id >= 0) listeners.emplace_back(basket, arcs.listener_id);
    }
    arcs_.clear();
  }
  for (auto& [basket, listener_id] : listeners) {
    basket->RemoveListener(listener_id);
  }
}

int Scheduler::ShardOf(int factory_id) const {
  const int n = static_cast<int>(shards_.size());
  return ((factory_id % n) + n) % n;
}

void Scheduler::AddFactory(FactoryPtr factory) {
  const int id = factory->id();
  {
    WriterLock reg(reg_mu_);
    auto entry = std::make_unique<Entry>();
    entry->factory = std::move(factory);
    entry->shard = ShardOf(id);
    entries_[id] = std::move(entry);
  }
  // A from-start reader may already be enabled; kick it once.
  NotifyFactory(id);
}

void Scheduler::RemoveFactory(int factory_id) {
  // Phase 1: quiesce the entry — wait out an in-flight fire (possibly on
  // a stealing worker) and unlink a queued entry from its home ready
  // queue. The wait is sliced so reg_mu_ is never held across a blocking
  // wait (a pending writer would otherwise wedge the firing worker's
  // completion path behind us).
  while (true) {
    bool quiesced = false;
    {
      ReaderLock reg(reg_mu_);
      auto it = entries_.find(factory_id);
      if (it == entries_.end()) return;
      Entry& e = *it->second;
      Shard& s = *shards_[e.shard];
      MutexLock lock(s.mu);
      if (e.state == EntryState::kRunning) {
        // One 1 ms slice; the outer loop re-takes reg_mu_ and re-checks.
        s.cv.WaitFor(s.mu, 1000);
      }
      if (e.state != EntryState::kRunning) {
        if (e.state == EntryState::kQueued) std::erase(s.ready, factory_id);
        e.state = EntryState::kRemoving;  // blocks re-enqueue until unlinked
        quiesced = true;
      }
    }
    if (quiesced) break;
  }
  // Phase 2: unlink the registration and every arc pointing at it.
  std::vector<std::pair<Basket*, int>> dead_listeners;
  {
    WriterLock reg(reg_mu_);
    entries_.erase(factory_id);
    for (auto it = arcs_.begin(); it != arcs_.end();) {
      std::erase(it->second.factory_ids, factory_id);
      if (it->second.factory_ids.empty()) {
        dead_listeners.emplace_back(it->first, it->second.listener_id);
        it = arcs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [basket, listener_id] : dead_listeners) {
    if (listener_id >= 0) basket->RemoveListener(listener_id);
  }
}

std::vector<FactoryPtr> Scheduler::Factories() const {
  ReaderLock reg(reg_mu_);
  std::vector<FactoryPtr> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.push_back(e->factory);
  return out;
}

void Scheduler::AttachArc(Basket* basket, int factory_id) {
  WriterLock reg(reg_mu_);
  ArcList& arcs = arcs_[basket];
  if (std::find(arcs.factory_ids.begin(), arcs.factory_ids.end(),
                factory_id) != arcs.factory_ids.end()) {
    return;
  }
  arcs.factory_ids.push_back(factory_id);
  if (arcs.listener_id < 0) {
    arcs.listener_id = basket->AddListener([this, basket] { Pulse(basket); });
  }
}

bool Scheduler::EnqueueIfIdleLocked(int factory_id) {
  auto it = entries_.find(factory_id);
  if (it == entries_.end()) return false;
  Entry& e = *it->second;
  Shard& s = *shards_[e.shard];
  MutexLock lock(s.mu);
  if (e.state != EntryState::kIdle) return false;
  e.state = EntryState::kQueued;
  s.ready.push_back(factory_id);
  ++s.stats.enqueues;
  s.stats.max_queue_depth =
      std::max<uint64_t>(s.stats.max_queue_depth, s.ready.size());
  return true;
}

void Scheduler::WakeWorkers(int newly_queued) {
  if (newly_queued <= 0) return;
  {
    MutexLock lock(idle_mu_);
    wake_tokens_ += static_cast<uint64_t>(newly_queued);
  }
  // With stealing on, any woken worker can claim the work, so one wake per
  // enqueue suffices. With stealing off, only the owning worker can — and
  // notify_one might pick a non-owner that consumes the token and parks
  // again, stranding the entry until the fallback tick. Wake everyone.
  if (newly_queued == 1 && options_.work_stealing) {
    idle_cv_.NotifyOne();
  } else {
    idle_cv_.NotifyAll();
  }
}

void Scheduler::Pulse(Basket* basket) {
  notifications_.fetch_add(1, std::memory_order_relaxed);
  int enqueued = 0;
  {
    ReaderLock reg(reg_mu_);
    auto it = arcs_.find(basket);
    if (it == arcs_.end()) return;
    for (int id : it->second.factory_ids) {
      if (EnqueueIfIdleLocked(id)) ++enqueued;
    }
  }
  WakeWorkers(enqueued);
}

void Scheduler::Notify() {
  notifications_.fetch_add(1, std::memory_order_relaxed);
  int enqueued = 0;
  {
    ReaderLock reg(reg_mu_);
    for (const auto& [id, e] : entries_) {
      if (EnqueueIfIdleLocked(id)) ++enqueued;
    }
  }
  WakeWorkers(enqueued);
}

void Scheduler::NotifyFactory(int factory_id) {
  int enqueued = 0;
  {
    ReaderLock reg(reg_mu_);
    if (EnqueueIfIdleLocked(factory_id)) enqueued = 1;
  }
  WakeWorkers(enqueued);
}

bool Scheduler::ClaimNext(int worker_index, Claimed* out) {
  ReaderLock reg(reg_mu_);
  const int num_shards = static_cast<int>(shards_.size());
  const int num_workers = std::max(1, options_.num_workers);
  // Pass 0: FIFO-pop the shards this worker owns. Pass 1: steal from the
  // back of everyone else's queue.
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1 && !options_.work_stealing) break;
    for (int k = 0; k < num_shards; ++k) {
      const int si = (worker_index + k) % num_shards;
      const bool owned = (si % num_workers) == worker_index;
      if ((pass == 0) != owned) continue;
      Shard& s = *shards_[si];
      MutexLock lock(s.mu);
      while (!s.ready.empty()) {
        int id;
        if (pass == 0) {
          id = s.ready.front();
          s.ready.pop_front();
        } else {
          id = s.ready.back();
          s.ready.pop_back();
        }
        auto it = entries_.find(id);
        if (it == entries_.end()) continue;                 // defensive
        Entry& e = *it->second;
        if (e.state != EntryState::kQueued) continue;       // defensive
        e.state = EntryState::kRunning;
        if (pass == 1) {
          ++s.stats.steals;
          trace::Instant("sched.steal", "sched", id);
        }
        out->id = id;
        out->factory = e.factory;
        return true;
      }
    }
  }
  return false;
}

bool Scheduler::TryClaimById(int factory_id) {
  ReaderLock reg(reg_mu_);
  auto it = entries_.find(factory_id);
  if (it == entries_.end()) return false;
  Entry& e = *it->second;
  Shard& s = *shards_[e.shard];
  MutexLock lock(s.mu);
  if (e.state == EntryState::kQueued) {
    std::erase(s.ready, factory_id);
  } else if (e.state != EntryState::kIdle) {
    return false;
  }
  e.state = EntryState::kRunning;
  return true;
}

void Scheduler::CompleteFire(const Claimed& c, bool fired, bool error,
                             bool requeue) {
  {
    ReaderLock reg(reg_mu_);
    auto it = entries_.find(c.id);
    if (it != entries_.end()) {
      Entry& e = *it->second;
      Shard& s = *shards_[e.shard];
      MutexLock lock(s.mu);
      if (fired) {
        ++s.stats.fires;
        if (error) ++s.stats.fire_errors;
      } else {
        ++s.stats.spurious_pops;
      }
      e.state = EntryState::kIdle;
      // A RemoveFactory() may be waiting for this entry to stop running.
      s.cv.NotifyAll();
    }
  }
  // A factory can be multiply enabled (several windows completed by one
  // pulse) and pulses arriving mid-fire are dropped, so the authoritative
  // probe runs once more after every fire.
  if (requeue && c.factory->CheckReady()) NotifyFactory(c.id);
}

void Scheduler::WorkerLoop(int worker_index) {
  while (true) {
    Claimed c;
    if (ClaimNext(worker_index, &c)) {
      bool fired = false;
      bool error = false;
      if (c.factory->CheckReady()) {
        const Status st = c.factory->Fire();
        fired = true;
        error = !st.ok();
      }
      CompleteFire(c, fired, error, /*requeue=*/true);
      continue;
    }
    MutexLock lock(idle_mu_);
    if (stop_) return;
    if (wake_tokens_ == 0) {
      // Event-driven wait with a fallback tick (guards against wake
      // tokens lost to claim races).
      const Micros deadline = SteadyMicros() + 20000;
      while (!stop_ && wake_tokens_ == 0) {
        const Micros now = SteadyMicros();
        if (now >= deadline) break;
        idle_cv_.WaitFor(idle_mu_, deadline - now);
      }
    }
    if (stop_) return;
    if (wake_tokens_ > 0) --wake_tokens_;
  }
}

void Scheduler::Start() {
  MutexLock lock(idle_mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  wake_tokens_ = 0;
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void Scheduler::Stop() {
  // Exactly one caller becomes the joiner; it takes ownership of the
  // worker threads under idle_mu_ and joins them outside it. A concurrent
  // Stop() waits for the joiner to finish instead of double-joining the
  // same std::thread objects, and only returns once the pool is down.
  // running_ stays true until the join completes so Start() cannot launch
  // a second pool mid-teardown.
  std::vector<std::thread> workers;
  {
    MutexLock lock(idle_mu_);
    while (stopping_) idle_cv_.Wait(idle_mu_);
    if (!running_) return;
    stopping_ = true;
    stop_ = true;
    workers = std::move(workers_);
    workers_.clear();
  }
  idle_cv_.NotifyAll();
  for (std::thread& t : workers) t.join();
  {
    MutexLock lock(idle_mu_);
    running_ = false;
    stopping_ = false;
  }
  idle_cv_.NotifyAll();
}

int Scheduler::DrainReady() {
  int fires = 0;
  while (true) {
    // Deterministic pass: probe and fire in factory-id order.
    std::vector<Claimed> snapshot;
    {
      ReaderLock reg(reg_mu_);
      snapshot.reserve(entries_.size());
      for (const auto& [id, e] : entries_) {
        snapshot.push_back(Claimed{id, e->factory});
      }
    }
    int pass_fires = 0;
    for (Claimed& c : snapshot) {
      if (!c.factory->CheckReady()) continue;
      if (!TryClaimById(c.id)) continue;
      const Status st = c.factory->Fire();
      CompleteFire(c, /*fired=*/true, !st.ok(), /*requeue=*/false);
      ++pass_fires;
    }
    fires += pass_fires;
    if (pass_fires == 0) break;
  }
  return fires;
}

bool Scheduler::AnyBusyOrReady() const {
  std::vector<FactoryPtr> factories;
  {
    ReaderLock reg(reg_mu_);
    factories.reserve(entries_.size());
    for (const auto& [id, e] : entries_) {
      Shard& s = *shards_[e->shard];
      MutexLock lock(s.mu);
      if (e->state == EntryState::kRunning) return true;
      factories.push_back(e->factory);
    }
  }
  for (const FactoryPtr& f : factories) {
    if (f->CheckReady()) return true;
  }
  return false;
}

SchedulerStats Scheduler::Stats() const {
  SchedulerStats out;
  out.notifications = notifications_.load(std::memory_order_relaxed);
  {
    // Registry before shard locks (kSchedRegistry < kSchedShard).
    ReaderLock reg(reg_mu_);
    out.factories = entries_.size();
    for (const auto& [basket, arcs] : arcs_) {
      out.arcs += arcs.factory_ids.size();
    }
  }
  out.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock lock(s.mu);
    SchedulerShardStats ss = s.stats;
    ss.queue_depth = s.ready.size();
    out.fires += ss.fires;
    out.fire_errors += ss.fire_errors;
    out.enqueues += ss.enqueues;
    out.steals += ss.steals;
    out.spurious_pops += ss.spurious_pops;
    out.shards.push_back(ss);
  }
  return out;
}

}  // namespace dc
