#include "core/scheduler.h"

#include <chrono>

#include "util/logging.h"

namespace dc {

Scheduler::Scheduler() : Scheduler(Options{}) {}

Scheduler::Scheduler(Options options) : options_(options) {}

Scheduler::~Scheduler() { Stop(); }

void Scheduler::AddFactory(FactoryPtr factory) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(Entry{std::move(factory), false});
  }
  cv_.notify_all();
}

void Scheduler::RemoveFactory(int factory_id) {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait until the factory is not firing, then unlink it.
  cv_.wait(lock, [&] {
    for (const Entry& e : entries_) {
      if (e.factory->id() == factory_id && e.busy) return false;
    }
    return true;
  });
  std::erase_if(entries_, [&](const Entry& e) {
    return e.factory->id() == factory_id;
  });
}

std::vector<FactoryPtr> Scheduler::Factories() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FactoryPtr> out;
  for (const Entry& e : entries_) out.push_back(e.factory);
  return out;
}

void Scheduler::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.notifications;
  }
  cv_.notify_all();
}

FactoryPtr Scheduler::ClaimReadyLocked() {
  const size_t n = entries_.size();
  for (size_t i = 0; i < n; ++i) {
    Entry& e = entries_[(rr_cursor_ + i) % n];
    if (e.busy) continue;
    if (e.factory->CheckReady()) {
      e.busy = true;
      rr_cursor_ = (rr_cursor_ + i + 1) % n;
      return e.factory;
    }
  }
  return nullptr;
}

void Scheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    FactoryPtr f = ClaimReadyLocked();
    if (f == nullptr) {
      // Event-driven wait with a fallback tick (guards against missed
      // pulses from exotic listener orderings).
      cv_.wait_for(lock, std::chrono::milliseconds(20));
      continue;
    }
    lock.unlock();
    const Status st = f->Fire();
    lock.lock();
    ++stats_.fires;
    if (!st.ok()) ++stats_.fire_errors;
    for (Entry& e : entries_) {
      if (e.factory.get() == f.get()) e.busy = false;
    }
    cv_.notify_all();
  }
}

void Scheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Scheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

int Scheduler::DrainReady() {
  int fires = 0;
  while (true) {
    FactoryPtr f;
    {
      std::lock_guard<std::mutex> lock(mu_);
      f = ClaimReadyLocked();
    }
    if (f == nullptr) break;
    const Status st = f->Fire();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fires;
      if (!st.ok()) ++stats_.fire_errors;
      for (Entry& e : entries_) {
        if (e.factory.get() == f.get()) e.busy = false;
      }
    }
    // A concurrent RemoveFactory() may be waiting for this entry to stop
    // being busy; without the wakeup it would block until some unrelated
    // notification (or forever in pure manual mode).
    cv_.notify_all();
    ++fires;
  }
  return fires;
}

bool Scheduler::AnyBusyOrReady() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.busy || e.factory->CheckReady()) return true;
  }
  return false;
}

SchedulerStats Scheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dc
