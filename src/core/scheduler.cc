#include "core/scheduler.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace dc {

Scheduler::Scheduler() : Scheduler(Options{}) {}

Scheduler::Scheduler(Options options) : options_(options) {
  int shards = options_.num_shards;
  if (shards <= 0) shards = std::max(1, options_.num_workers);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

Scheduler::~Scheduler() {
  Stop();
  // Detach pulse listeners so baskets stop calling into this object.
  // Baskets are required to outlive the scheduler (see header).
  std::vector<std::pair<Basket*, int>> listeners;
  {
    std::unique_lock<std::shared_mutex> reg(reg_mu_);
    for (auto& [basket, arcs] : arcs_) {
      if (arcs.listener_id >= 0) listeners.emplace_back(basket, arcs.listener_id);
    }
    arcs_.clear();
  }
  for (auto& [basket, listener_id] : listeners) {
    basket->RemoveListener(listener_id);
  }
}

int Scheduler::ShardOf(int factory_id) const {
  const int n = static_cast<int>(shards_.size());
  return ((factory_id % n) + n) % n;
}

void Scheduler::AddFactory(FactoryPtr factory) {
  const int id = factory->id();
  {
    std::unique_lock<std::shared_mutex> reg(reg_mu_);
    auto entry = std::make_unique<Entry>();
    entry->factory = std::move(factory);
    entry->shard = ShardOf(id);
    entries_[id] = std::move(entry);
  }
  // A from-start reader may already be enabled; kick it once.
  NotifyFactory(id);
}

void Scheduler::RemoveFactory(int factory_id) {
  // Phase 1: quiesce the entry — wait out an in-flight fire (possibly on
  // a stealing worker) and unlink a queued entry from its home ready
  // queue. The wait is sliced so reg_mu_ is never held across a blocking
  // wait (a pending writer would otherwise wedge the firing worker's
  // completion path behind us).
  while (true) {
    bool quiesced = false;
    {
      std::shared_lock<std::shared_mutex> reg(reg_mu_);
      auto it = entries_.find(factory_id);
      if (it == entries_.end()) return;
      Entry& e = *it->second;
      Shard& s = *shards_[e.shard];
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv.wait_for(lock, std::chrono::milliseconds(1),
                    [&] { return e.state != EntryState::kRunning; });
      if (e.state != EntryState::kRunning) {
        if (e.state == EntryState::kQueued) std::erase(s.ready, factory_id);
        e.state = EntryState::kRemoving;  // blocks re-enqueue until unlinked
        quiesced = true;
      }
    }
    if (quiesced) break;
  }
  // Phase 2: unlink the registration and every arc pointing at it.
  std::vector<std::pair<Basket*, int>> dead_listeners;
  {
    std::unique_lock<std::shared_mutex> reg(reg_mu_);
    entries_.erase(factory_id);
    for (auto it = arcs_.begin(); it != arcs_.end();) {
      std::erase(it->second.factory_ids, factory_id);
      if (it->second.factory_ids.empty()) {
        dead_listeners.emplace_back(it->first, it->second.listener_id);
        it = arcs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [basket, listener_id] : dead_listeners) {
    if (listener_id >= 0) basket->RemoveListener(listener_id);
  }
}

std::vector<FactoryPtr> Scheduler::Factories() const {
  std::shared_lock<std::shared_mutex> reg(reg_mu_);
  std::vector<FactoryPtr> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.push_back(e->factory);
  return out;
}

void Scheduler::AttachArc(Basket* basket, int factory_id) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  ArcList& arcs = arcs_[basket];
  if (std::find(arcs.factory_ids.begin(), arcs.factory_ids.end(),
                factory_id) != arcs.factory_ids.end()) {
    return;
  }
  arcs.factory_ids.push_back(factory_id);
  if (arcs.listener_id < 0) {
    arcs.listener_id = basket->AddListener([this, basket] { Pulse(basket); });
  }
}

bool Scheduler::EnqueueIfIdleLocked(int factory_id) {
  auto it = entries_.find(factory_id);
  if (it == entries_.end()) return false;
  Entry& e = *it->second;
  Shard& s = *shards_[e.shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (e.state != EntryState::kIdle) return false;
  e.state = EntryState::kQueued;
  s.ready.push_back(factory_id);
  ++s.stats.enqueues;
  s.stats.max_queue_depth =
      std::max<uint64_t>(s.stats.max_queue_depth, s.ready.size());
  return true;
}

void Scheduler::WakeWorkers(int newly_queued) {
  if (newly_queued <= 0) return;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    wake_tokens_ += static_cast<uint64_t>(newly_queued);
  }
  // With stealing on, any woken worker can claim the work, so one wake per
  // enqueue suffices. With stealing off, only the owning worker can — and
  // notify_one might pick a non-owner that consumes the token and parks
  // again, stranding the entry until the fallback tick. Wake everyone.
  if (newly_queued == 1 && options_.work_stealing) {
    idle_cv_.notify_one();
  } else {
    idle_cv_.notify_all();
  }
}

void Scheduler::Pulse(Basket* basket) {
  notifications_.fetch_add(1, std::memory_order_relaxed);
  int enqueued = 0;
  {
    std::shared_lock<std::shared_mutex> reg(reg_mu_);
    auto it = arcs_.find(basket);
    if (it == arcs_.end()) return;
    for (int id : it->second.factory_ids) {
      if (EnqueueIfIdleLocked(id)) ++enqueued;
    }
  }
  WakeWorkers(enqueued);
}

void Scheduler::Notify() {
  notifications_.fetch_add(1, std::memory_order_relaxed);
  int enqueued = 0;
  {
    std::shared_lock<std::shared_mutex> reg(reg_mu_);
    for (const auto& [id, e] : entries_) {
      if (EnqueueIfIdleLocked(id)) ++enqueued;
    }
  }
  WakeWorkers(enqueued);
}

void Scheduler::NotifyFactory(int factory_id) {
  int enqueued = 0;
  {
    std::shared_lock<std::shared_mutex> reg(reg_mu_);
    if (EnqueueIfIdleLocked(factory_id)) enqueued = 1;
  }
  WakeWorkers(enqueued);
}

bool Scheduler::ClaimNext(int worker_index, Claimed* out) {
  std::shared_lock<std::shared_mutex> reg(reg_mu_);
  const int num_shards = static_cast<int>(shards_.size());
  const int num_workers = std::max(1, options_.num_workers);
  // Pass 0: FIFO-pop the shards this worker owns. Pass 1: steal from the
  // back of everyone else's queue.
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1 && !options_.work_stealing) break;
    for (int k = 0; k < num_shards; ++k) {
      const int si = (worker_index + k) % num_shards;
      const bool owned = (si % num_workers) == worker_index;
      if ((pass == 0) != owned) continue;
      Shard& s = *shards_[si];
      std::lock_guard<std::mutex> lock(s.mu);
      while (!s.ready.empty()) {
        int id;
        if (pass == 0) {
          id = s.ready.front();
          s.ready.pop_front();
        } else {
          id = s.ready.back();
          s.ready.pop_back();
        }
        auto it = entries_.find(id);
        if (it == entries_.end()) continue;                 // defensive
        Entry& e = *it->second;
        if (e.state != EntryState::kQueued) continue;       // defensive
        e.state = EntryState::kRunning;
        if (pass == 1) ++s.stats.steals;
        out->id = id;
        out->factory = e.factory;
        return true;
      }
    }
  }
  return false;
}

bool Scheduler::TryClaimById(int factory_id) {
  std::shared_lock<std::shared_mutex> reg(reg_mu_);
  auto it = entries_.find(factory_id);
  if (it == entries_.end()) return false;
  Entry& e = *it->second;
  Shard& s = *shards_[e.shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (e.state == EntryState::kQueued) {
    std::erase(s.ready, factory_id);
  } else if (e.state != EntryState::kIdle) {
    return false;
  }
  e.state = EntryState::kRunning;
  return true;
}

void Scheduler::CompleteFire(const Claimed& c, bool fired, bool error,
                             bool requeue) {
  {
    std::shared_lock<std::shared_mutex> reg(reg_mu_);
    auto it = entries_.find(c.id);
    if (it != entries_.end()) {
      Entry& e = *it->second;
      Shard& s = *shards_[e.shard];
      std::lock_guard<std::mutex> lock(s.mu);
      if (fired) {
        ++s.stats.fires;
        if (error) ++s.stats.fire_errors;
      } else {
        ++s.stats.spurious_pops;
      }
      e.state = EntryState::kIdle;
      // A RemoveFactory() may be waiting for this entry to stop running.
      s.cv.notify_all();
    }
  }
  // A factory can be multiply enabled (several windows completed by one
  // pulse) and pulses arriving mid-fire are dropped, so the authoritative
  // probe runs once more after every fire.
  if (requeue && c.factory->CheckReady()) NotifyFactory(c.id);
}

void Scheduler::WorkerLoop(int worker_index) {
  while (true) {
    Claimed c;
    if (ClaimNext(worker_index, &c)) {
      bool fired = false;
      bool error = false;
      if (c.factory->CheckReady()) {
        const Status st = c.factory->Fire();
        fired = true;
        error = !st.ok();
      }
      CompleteFire(c, fired, error, /*requeue=*/true);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stop_) return;
    if (wake_tokens_ == 0) {
      // Event-driven wait with a fallback tick (guards against wake
      // tokens lost to claim races).
      idle_cv_.wait_for(lock, std::chrono::milliseconds(20),
                        [&] { return stop_ || wake_tokens_ > 0; });
    }
    if (stop_) return;
    if (wake_tokens_ > 0) --wake_tokens_;
  }
}

void Scheduler::Start() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  wake_tokens_ = 0;
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void Scheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (!running_) return;
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(idle_mu_);
  running_ = false;
}

int Scheduler::DrainReady() {
  int fires = 0;
  while (true) {
    // Deterministic pass: probe and fire in factory-id order.
    std::vector<Claimed> snapshot;
    {
      std::shared_lock<std::shared_mutex> reg(reg_mu_);
      snapshot.reserve(entries_.size());
      for (const auto& [id, e] : entries_) {
        snapshot.push_back(Claimed{id, e->factory});
      }
    }
    int pass_fires = 0;
    for (Claimed& c : snapshot) {
      if (!c.factory->CheckReady()) continue;
      if (!TryClaimById(c.id)) continue;
      const Status st = c.factory->Fire();
      CompleteFire(c, /*fired=*/true, !st.ok(), /*requeue=*/false);
      ++pass_fires;
    }
    fires += pass_fires;
    if (pass_fires == 0) break;
  }
  return fires;
}

bool Scheduler::AnyBusyOrReady() const {
  std::vector<FactoryPtr> factories;
  {
    std::shared_lock<std::shared_mutex> reg(reg_mu_);
    factories.reserve(entries_.size());
    for (const auto& [id, e] : entries_) {
      Shard& s = *shards_[e->shard];
      std::lock_guard<std::mutex> lock(s.mu);
      if (e->state == EntryState::kRunning) return true;
      factories.push_back(e->factory);
    }
  }
  for (const FactoryPtr& f : factories) {
    if (f->CheckReady()) return true;
  }
  return false;
}

SchedulerStats Scheduler::Stats() const {
  SchedulerStats out;
  out.notifications = notifications_.load(std::memory_order_relaxed);
  out.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    SchedulerShardStats ss = s.stats;
    ss.queue_depth = s.ready.size();
    out.fires += ss.fires;
    out.fire_errors += ss.fire_errors;
    out.enqueues += ss.enqueues;
    out.steals += ss.steals;
    out.spurious_pops += ss.spurious_pops;
    out.shards.push_back(ss);
  }
  return out;
}

}  // namespace dc
