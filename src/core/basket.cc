#include "core/basket.h"

#include <algorithm>

#include "monitor/trace.h"
#include "util/string_util.h"

namespace dc {

namespace {
/// Bound on retained watermark stamps; beyond it the oldest are trimmed
/// and stamp lookups for trimmed boundaries fall back conservatively.
constexpr size_t kMaxWatermarkStamps = 8192;
}  // namespace

Basket::Basket(std::string name, Schema schema, size_t ts_col,
               BasketLimits limits)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      ts_col_(ts_col),
      limits_(limits) {
  for (const ColumnDef& c : schema_.columns()) {
    cols_.push_back(Bat::MakeEmpty(c.type));
  }
}

void Basket::SetLimits(BasketLimits limits) {
  {
    MutexLock lock(mu_);
    limits_ = limits;
  }
  space_cv_.NotifyAll();
}

BasketLimits Basket::limits() const {
  MutexLock lock(mu_);
  return limits_;
}

Status Basket::ValidateBatch(const std::vector<BatPtr>& cols,
                             uint64_t* n) const {
  if (cols.size() != cols_.size()) {
    return Status::InvalidArgument(
        StrFormat("basket %s: expected %zu columns, got %zu", name_.c_str(),
                  cols_.size(), cols.size()));
  }
  *n = cols.empty() ? 0 : cols[0]->size();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i]->type() != schema_.column(i).type) {
      return Status::TypeError(
          StrFormat("basket %s column %zu: expected %s, got %s",
                    name_.c_str(), i, TypeName(schema_.column(i).type),
                    TypeName(cols[i]->type())));
    }
    if (cols[i]->size() != *n) {
      return Status::InvalidArgument("ragged basket append");
    }
  }
  return Status::OK();
}

size_t Basket::MemoryBytesLocked() const {
  size_t total = 0;
  for (const BatPtr& c : cols_) total += c->MemoryBytes();
  return total;
}

bool Basket::AtCapacityLocked() const {
  if (limits_.max_rows > 0 && high_ - base_ >= limits_.max_rows) return true;
  if (limits_.max_bytes > 0 && MemoryBytesLocked() >= limits_.max_bytes) {
    return true;
  }
  return false;
}

Status Basket::WaitForSpaceLocked(uint64_t n, Micros timeout_micros) {
  // Admission control: a batch is admitted as soon as the basket is below
  // the bound, so occupancy overshoots by at most the one in-flight batch
  // (and batches larger than the bound still make progress).
  if (n == 0 || !limits_.bounded() || !AtCapacityLocked()) return Status::OK();
  ++append_stalls_;
  trace::Span stall_span("basket.stall", "basket",
                         static_cast<int64_t>(n));
  bool admitted;
  if (timeout_micros < 0) {  // kBlockForever
    // An unbounded wait is satisfiable only if a reader exists to free
    // space; with none, fail fast instead of deadlocking the producer.
    // (Bounded waits below still sleep out their slice — pollers like the
    // parked receptor rely on that for pacing.)
    if (readers_.empty()) {
      ++append_timeouts_;
      return Status::ResourceExhausted(StrFormat(
          "basket %s full with no readers to drain it", name_.c_str()));
    }
    const Micros wait_start = SteadyMicros();
    while (AtCapacityLocked() && !readers_.empty()) space_cv_.Wait(mu_);
    stall_micros_ += SteadyMicros() - wait_start;
    admitted = !AtCapacityLocked();
    if (!admitted) {
      // Still at capacity, so the wake came from the readers_.empty() arm:
      // the last reader unregistered mid-wait and nothing can free space.
      ++append_timeouts_;
      return Status::ResourceExhausted(StrFormat(
          "basket %s full with no readers to drain it", name_.c_str()));
    }
  } else {
    const Micros wait_start = SteadyMicros();
    const Micros deadline = wait_start + timeout_micros;
    admitted = !AtCapacityLocked();
    while (!admitted) {
      const Micros now = SteadyMicros();
      if (now >= deadline) break;
      space_cv_.WaitFor(mu_, deadline - now);
      admitted = !AtCapacityLocked();
    }
    stall_micros_ += SteadyMicros() - wait_start;
  }
  if (admitted) return Status::OK();
  ++append_timeouts_;
  return Status::ResourceExhausted(
      StrFormat("basket %s full (%llu resident rows, cap %llu rows/%zu B)",
                name_.c_str(),
                static_cast<unsigned long long>(high_ - base_),
                static_cast<unsigned long long>(limits_.max_rows),
                limits_.max_bytes));
}

Status Basket::Append(const std::vector<BatPtr>& cols, Micros timeout_micros,
                      Micros ingest_us) {
  // Stamp before any capacity wait: a batch stalled by backpressure is
  // "in flight" from the producer's perspective, so the stall counts
  // toward downstream ingest→delivery latency.
  if (ingest_us < 0) ingest_us = SteadyMicros();
  trace::Span span("basket.append", "basket",
                   cols.empty() ? 0 : static_cast<int64_t>(cols[0]->size()));
  {
    MutexLock lock(mu_);
    uint64_t n = 0;
    DC_RETURN_NOT_OK(ValidateBatch(cols, &n));
    DC_RETURN_NOT_OK(WaitForSpaceLocked(n, timeout_micros));
    DC_RETURN_NOT_OK(AppendLocked(cols, ingest_us));
  }
  NotifyAll();
  return Status::OK();
}

Status Basket::AppendLocked(const std::vector<BatPtr>& cols,
                            Micros ingest_us) {
  const uint64_t n = cols.empty() ? 0 : cols[0]->size();
  if (n == 0) {
    // A zero-row batch carries no data but its boundary is an emission:
    // record it in the batch log so emitters deliver the empty result set.
    // With no batch-tracking reader the boundary has no consumer and is
    // not retained — otherwise repeated empty appends on a reader-less
    // basket would grow the log without bound (bypassing the capacity
    // gate, which zero-row batches are exempt from).
    bool any_tracker = false;
    for (const auto& [id, st] : readers_) any_tracker |= st.tracks_batches;
    const BasketBatch boundary{append_batches_, high_, high_, ingest_us};
    if (any_tracker) batches_.push_back(boundary);
    ++append_batches_;
    ++empty_batches_;
    if (hooks_.on_batch) hooks_.on_batch(boundary, cols);
    return Status::OK();
  }
  BatPtr clamped_ts;  // set iff clamping rewrote the ts column (WAL copy)
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i == ts_col_) {
      // Clamp event time to be non-decreasing (documented simplification).
      auto ts = cols[i]->I64Data();
      Micros prev = watermark_;
      bool monotone = true;
      for (int64_t t : ts) {
        if (t < prev) {
          monotone = false;
          break;
        }
        prev = t;
      }
      if (monotone) {
        cols_[i]->AppendRange(*cols[i], 0, n);
        watermark_ = std::max(watermark_, ts[n - 1]);
      } else {
        Micros clamp = watermark_;
        if (hooks_.on_batch) clamped_ts = Bat::MakeEmpty(cols[i]->type());
        for (int64_t t : ts) {
          clamp = std::max<Micros>(clamp, t);
          cols_[i]->AppendI64(clamp);
          if (clamped_ts) clamped_ts->AppendI64(clamp);
        }
        watermark_ = clamp;
      }
    } else {
      cols_[i]->AppendRange(*cols[i], 0, n);
    }
  }
  const BasketBatch logged{append_batches_, high_, high_ + n, ingest_us};
  batches_.push_back(logged);
  ++append_batches_;
  high_ += n;
  if (hooks_.on_batch) {
    // The WAL must see the values the basket actually stored, so a
    // replayed log re-clamps as a no-op.
    if (clamped_ts) {
      std::vector<BatPtr> stored = cols;
      stored[ts_col_] = clamped_ts;
      hooks_.on_batch(logged, stored);
    } else {
      hooks_.on_batch(logged, cols);
    }
  }
  PushWatermarkStampLocked(watermark_, ingest_us);
  resident_hwm_rows_ = std::max(resident_hwm_rows_, high_ - base_);
  memory_hwm_bytes_ = std::max(memory_hwm_bytes_, MemoryBytesLocked());
  return Status::OK();
}

Status Basket::AppendRow(const std::vector<Value>& row,
                         Micros timeout_micros) {
  std::vector<BatPtr> cols;
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("basket %s: expected %zu values, got %zu", name_.c_str(),
                  schema_.NumColumns(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    DC_ASSIGN_OR_RETURN(Value v, row[i].CastTo(schema_.column(i).type));
    auto col = Bat::MakeEmpty(schema_.column(i).type);
    col->AppendValue(v);
    cols.push_back(std::move(col));
  }
  return Append(cols, timeout_micros);
}

void Basket::Heartbeat(Micros event_ts) {
  {
    MutexLock lock(mu_);
    watermark_ = std::max(watermark_, event_ts);
    PushWatermarkStampLocked(watermark_, SteadyMicros());
    if (hooks_.on_heartbeat) hooks_.on_heartbeat(event_ts);
  }
  NotifyAll();
}

void Basket::Seal() {
  {
    MutexLock lock(mu_);
    if (!sealed_) {
      sealed_ = true;
      // Terminal stamp: sealed-flush emissions (fired although the
      // watermark never reached their boundary) resolve their trigger
      // time to the seal.
      PushWatermarkStampLocked(INT64_MAX, SteadyMicros());
      if (hooks_.on_seal) hooks_.on_seal();
    }
  }
  NotifyAll();
}

void Basket::SetDurabilityHooks(DurabilityHooks hooks) {
  MutexLock lock(mu_);
  hooks_ = std::move(hooks);
}

Status Basket::RestoreLogPosition(uint64_t start_seq, uint64_t next_ordinal,
                                  Micros watermark, bool sealed) {
  MutexLock lock(mu_);
  if (high_ != 0 || append_batches_ != 0) {
    return Status::InvalidArgument(StrFormat(
        "basket %s: RestoreLogPosition on a non-empty basket", name_.c_str()));
  }
  base_ = high_ = start_seq;
  append_batches_ = next_ordinal;
  if (watermark > watermark_) {
    watermark_ = watermark;
    PushWatermarkStampLocked(watermark_, SteadyMicros());
  }
  if (sealed) {
    sealed_ = true;
    PushWatermarkStampLocked(INT64_MAX, SteadyMicros());
  }
  return Status::OK();
}

void Basket::PushWatermarkStampLocked(Micros watermark, Micros at_us) {
  if (!wm_stamps_.empty() && wm_stamps_.back().watermark >= watermark) return;
  wm_stamps_.push_back(WatermarkStamp{watermark, at_us});
  if (wm_stamps_.size() > kMaxWatermarkStamps) wm_stamps_.pop_front();
}

Micros Basket::IngestStampForSeq(uint64_t end_seq) const {
  MutexLock lock(mu_);
  // batches_ is ascending in end_seq; find the first entry whose end_seq
  // reaches `end_seq` (zero-row entries share an end_seq with the data
  // batch before them, and lower_bound lands on the earlier — data —
  // entry, which carries the arrival time we want).
  auto it = std::lower_bound(
      batches_.begin(), batches_.end(), end_seq,
      [](const BasketBatch& b, uint64_t seq) { return b.end_seq < seq; });
  if (it != batches_.end()) return it->ingest_us;
  // The entry was trimmed (all surviving entries end below end_seq can't
  // happen for a due emission, so this is the already-shrunk case): fall
  // back to the oldest survivor — later than the truth, i.e. latency is
  // underestimated, never inflated.
  if (!batches_.empty()) return batches_.front().ingest_us;
  return -1;
}

Micros Basket::IngestStampForWatermark(Micros ts) const {
  MutexLock lock(mu_);
  auto it = std::lower_bound(
      wm_stamps_.begin(), wm_stamps_.end(), ts,
      [](const WatermarkStamp& s, Micros t) { return s.watermark < t; });
  if (it != wm_stamps_.end()) return it->at_us;
  return -1;
}

bool Basket::sealed() const {
  MutexLock lock(mu_);
  return sealed_;
}

int Basket::AddListener(std::function<void()> fn) {
  MutexLock lock(mu_);
  const int id = next_listener_++;
  listeners_[id] = std::move(fn);
  return id;
}

void Basket::RemoveListener(int listener_id) {
  MutexLock lock(mu_);
  listeners_.erase(listener_id);
  // A notify pass snapshots listeners before invoking them, so one that
  // started before the erase may still hold this listener. Callers tear
  // the listener's target down right after we return (e.g. ~Emitter on a
  // shared output basket whose aliased factory keeps firing), so block
  // until every in-flight pass has finished.
  while (notify_active_ > 0) notify_cv_.Wait(mu_);
}

void Basket::NotifyAll() {
  // Copy under lock, call outside it (listeners re-enter the scheduler).
  std::vector<std::function<void()>> fns;
  {
    MutexLock lock(mu_);
    fns.reserve(listeners_.size());
    for (const auto& [id, fn] : listeners_) fns.push_back(fn);
    ++notify_active_;
  }
  for (auto& fn : fns) fn();
  MutexLock lock(mu_);
  if (--notify_active_ == 0) notify_cv_.NotifyAll();
}

int Basket::RegisterReader(bool from_start, bool track_batches) {
  MutexLock lock(mu_);
  const int id = next_reader_++;
  ReaderState st;
  st.cursor = from_start ? base_ : high_;
  st.tracks_batches = track_batches;
  st.batch_ord = from_start ? (batches_.empty() ? append_batches_
                                                : batches_.front().ordinal)
                            : append_batches_;
  readers_[id] = st;
  return id;
}

uint64_t Basket::ReaderCursor(int reader_id) const {
  MutexLock lock(mu_);
  auto it = readers_.find(reader_id);
  return it == readers_.end() ? 0 : it->second.cursor;
}

void Basket::UnregisterReader(int reader_id) {
  {
    MutexLock lock(mu_);
    readers_.erase(reader_id);
    ShrinkLocked();
  }
  space_cv_.NotifyAll();
}

BasketView Basket::Read(uint64_t from_seq, uint64_t max_rows) const {
  MutexLock lock(mu_);
  BasketView view;
  const uint64_t lo = std::max(from_seq, base_);
  const uint64_t hi =
      std::min(high_, max_rows == UINT64_MAX ? high_ : lo + max_rows);
  view.first_seq = lo;
  view.rows = hi > lo ? hi - lo : 0;
  for (const BatPtr& c : cols_) {
    view.cols.push_back(view.rows == 0
                            ? Bat::MakeEmpty(c->type())
                            : c->Slice(lo - base_, hi - base_));
  }
  return view;
}

Result<std::pair<uint64_t, uint64_t>> Basket::SeqRangeForTs(
    Micros ts_lo, Micros ts_hi) const {
  if (!HasEventTime()) {
    return Status::InvalidArgument(
        StrFormat("basket %s has no event-time column", name_.c_str()));
  }
  MutexLock lock(mu_);
  auto ts = cols_[ts_col_]->I64Data();
  auto lo_it = std::lower_bound(ts.begin(), ts.end(), ts_lo);
  auto hi_it = std::lower_bound(ts.begin(), ts.end(), ts_hi);
  return std::make_pair(base_ + (lo_it - ts.begin()),
                        base_ + (hi_it - ts.begin()));
}

void Basket::AdvanceReader(int reader_id, uint64_t upto_seq) {
  // upto_ordinal=0 is a no-op on the batch cursor (it only ever advances).
  AdvanceReaderBatches(reader_id, upto_seq, 0);
}

void Basket::AdvanceReaderBatches(int reader_id, uint64_t upto_seq,
                                  uint64_t upto_ordinal) {
  {
    MutexLock lock(mu_);
    auto it = readers_.find(reader_id);
    if (it == readers_.end()) return;
    it->second.cursor =
        std::max(it->second.cursor, std::min(upto_seq, high_));
    it->second.batch_ord =
        std::max(it->second.batch_ord, std::min(upto_ordinal, append_batches_));
    ShrinkLocked();
  }
  space_cv_.NotifyAll();
}

void Basket::ShrinkLocked() {
  // Drop the prefix consumed by all readers. With no readers, nothing is
  // dropped (one-time queries may still want to peek).
  if (readers_.empty()) return;
  uint64_t min_cursor = high_;
  uint64_t min_batch_ord = UINT64_MAX;
  bool any_tracker = false;
  for (const auto& [id, st] : readers_) {
    min_cursor = std::min(min_cursor, st.cursor);
    if (st.tracks_batches) {
      any_tracker = true;
      min_batch_ord = std::min(min_batch_ord, st.batch_ord);
    }
  }
  if (min_cursor > base_) {
    const uint64_t drop = min_cursor - base_;
    for (BatPtr& c : cols_) c->DropHead(drop);
    base_ = min_cursor;
  }
  // Trim the batch log: an entry goes once its rows are below the drop
  // horizon AND every batch-tracking reader has acknowledged its ordinal.
  // The ordinal condition is what keeps a zero-row boundary sitting exactly
  // at the horizon alive until its emitter delivers it (and, being
  // monotone, makes double delivery impossible).
  while (!batches_.empty() && batches_.front().end_seq <= base_ &&
         (!any_tracker || batches_.front().ordinal < min_batch_ord)) {
    batches_.pop_front();
  }
}

uint64_t Basket::HighSeq() const {
  MutexLock lock(mu_);
  return high_;
}

uint64_t Basket::DropHorizon() const {
  MutexLock lock(mu_);
  return base_;
}

Micros Basket::EventWatermark() const {
  MutexLock lock(mu_);
  return watermark_;
}

std::vector<BasketBatch> Basket::BatchesAfter(uint64_t from_ordinal) const {
  MutexLock lock(mu_);
  std::vector<BasketBatch> out;
  for (const BasketBatch& b : batches_) {
    if (b.ordinal >= from_ordinal) out.push_back(b);
  }
  return out;
}

BasketStats Basket::Stats() const {
  MutexLock lock(mu_);
  BasketStats s;
  s.appended_total = high_;
  s.dropped_total = base_;
  s.resident_rows = high_ - base_;
  s.append_batches = append_batches_;
  s.empty_batches = empty_batches_;
  s.memory_bytes = MemoryBytesLocked();
  s.event_watermark = watermark_ == INT64_MIN ? 0 : watermark_;
  s.capacity_rows = limits_.max_rows;
  s.capacity_bytes = limits_.max_bytes;
  s.resident_hwm_rows = resident_hwm_rows_;
  s.memory_hwm_bytes = memory_hwm_bytes_;
  s.append_stalls = append_stalls_;
  s.append_timeouts = append_timeouts_;
  s.stall_micros = stall_micros_;
  s.readers = readers_.size();
  return s;
}

}  // namespace dc
