#include "core/basket.h"

#include <algorithm>

#include "util/string_util.h"

namespace dc {

Basket::Basket(std::string name, Schema schema, size_t ts_col)
    : name_(std::move(name)), schema_(std::move(schema)), ts_col_(ts_col) {
  for (const ColumnDef& c : schema_.columns()) {
    cols_.push_back(Bat::MakeEmpty(c.type));
  }
}

Status Basket::Append(const std::vector<BatPtr>& cols) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DC_RETURN_NOT_OK(AppendLocked(cols));
  }
  NotifyAll();
  return Status::OK();
}

Status Basket::AppendLocked(const std::vector<BatPtr>& cols) {
  if (cols.size() != cols_.size()) {
    return Status::InvalidArgument(
        StrFormat("basket %s: expected %zu columns, got %zu", name_.c_str(),
                  cols_.size(), cols.size()));
  }
  const uint64_t n = cols.empty() ? 0 : cols[0]->size();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i]->type() != schema_.column(i).type) {
      return Status::TypeError(
          StrFormat("basket %s column %zu: expected %s, got %s",
                    name_.c_str(), i, TypeName(schema_.column(i).type),
                    TypeName(cols[i]->type())));
    }
    if (cols[i]->size() != n) {
      return Status::InvalidArgument("ragged basket append");
    }
  }
  if (n == 0) return Status::OK();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i == ts_col_) {
      // Clamp event time to be non-decreasing (documented simplification).
      auto ts = cols[i]->I64Data();
      Micros prev = watermark_;
      bool monotone = true;
      for (int64_t t : ts) {
        if (t < prev) {
          monotone = false;
          break;
        }
        prev = t;
      }
      if (monotone) {
        cols_[i]->AppendRange(*cols[i], 0, n);
        watermark_ = std::max(watermark_, ts[n - 1]);
      } else {
        Micros clamp = watermark_;
        for (int64_t t : ts) {
          clamp = std::max<Micros>(clamp, t);
          cols_[i]->AppendI64(clamp);
        }
        watermark_ = clamp;
      }
    } else {
      cols_[i]->AppendRange(*cols[i], 0, n);
    }
  }
  high_ += n;
  batch_ends_.push_back(high_);
  ++append_batches_;
  return Status::OK();
}

Status Basket::AppendRow(const std::vector<Value>& row) {
  std::vector<BatPtr> cols;
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("basket %s: expected %zu values, got %zu", name_.c_str(),
                  schema_.NumColumns(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    DC_ASSIGN_OR_RETURN(Value v, row[i].CastTo(schema_.column(i).type));
    auto col = Bat::MakeEmpty(schema_.column(i).type);
    col->AppendValue(v);
    cols.push_back(std::move(col));
  }
  return Append(cols);
}

void Basket::Heartbeat(Micros event_ts) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    watermark_ = std::max(watermark_, event_ts);
  }
  NotifyAll();
}

void Basket::Seal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed_ = true;
  }
  NotifyAll();
}

bool Basket::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

void Basket::AddListener(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(std::move(fn));
}

void Basket::NotifyAll() {
  // Listener list is append-only; copy under lock, call outside it.
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns = listeners_;
  }
  for (auto& fn : fns) fn();
}

int Basket::RegisterReader(bool from_start) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_reader_++;
  readers_[id] = from_start ? base_ : high_;
  return id;
}

uint64_t Basket::ReaderCursor(int reader_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = readers_.find(reader_id);
  return it == readers_.end() ? 0 : it->second;
}

void Basket::UnregisterReader(int reader_id) {
  std::lock_guard<std::mutex> lock(mu_);
  readers_.erase(reader_id);
  ShrinkLocked();
}

BasketView Basket::Read(uint64_t from_seq, uint64_t max_rows) const {
  std::lock_guard<std::mutex> lock(mu_);
  BasketView view;
  const uint64_t lo = std::max(from_seq, base_);
  const uint64_t hi =
      std::min(high_, max_rows == UINT64_MAX ? high_ : lo + max_rows);
  view.first_seq = lo;
  view.rows = hi > lo ? hi - lo : 0;
  for (const BatPtr& c : cols_) {
    view.cols.push_back(view.rows == 0
                            ? Bat::MakeEmpty(c->type())
                            : c->Slice(lo - base_, hi - base_));
  }
  return view;
}

Result<std::pair<uint64_t, uint64_t>> Basket::SeqRangeForTs(
    Micros ts_lo, Micros ts_hi) const {
  if (!HasEventTime()) {
    return Status::InvalidArgument(
        StrFormat("basket %s has no event-time column", name_.c_str()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto ts = cols_[ts_col_]->I64Data();
  auto lo_it = std::lower_bound(ts.begin(), ts.end(), ts_lo);
  auto hi_it = std::lower_bound(ts.begin(), ts.end(), ts_hi);
  return std::make_pair(base_ + (lo_it - ts.begin()),
                        base_ + (hi_it - ts.begin()));
}

void Basket::AdvanceReader(int reader_id, uint64_t upto_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = readers_.find(reader_id);
  if (it == readers_.end()) return;
  it->second = std::max(it->second, std::min(upto_seq, high_));
  ShrinkLocked();
}

void Basket::ShrinkLocked() {
  // Drop the prefix consumed by all readers. With no readers, nothing is
  // dropped (one-time queries may still want to peek).
  if (readers_.empty()) return;
  uint64_t min_cursor = high_;
  for (const auto& [id, cur] : readers_) min_cursor = std::min(min_cursor, cur);
  if (min_cursor <= base_) return;
  const uint64_t drop = min_cursor - base_;
  for (BatPtr& c : cols_) c->DropHead(drop);
  base_ = min_cursor;
  while (!batch_ends_.empty() && batch_ends_.front() <= base_) {
    batch_ends_.pop_front();
  }
}

uint64_t Basket::HighSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_;
}

uint64_t Basket::DropHorizon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

Micros Basket::EventWatermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

std::vector<uint64_t> Basket::BatchBoundariesAfter(uint64_t from_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  for (uint64_t end : batch_ends_) {
    if (end > from_seq) out.push_back(end);
  }
  return out;
}

BasketStats Basket::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BasketStats s;
  s.appended_total = high_;
  s.dropped_total = base_;
  s.resident_rows = high_ - base_;
  s.append_batches = append_batches_;
  for (const BatPtr& c : cols_) s.memory_bytes += c->MemoryBytes();
  s.event_watermark = watermark_ == INT64_MIN ? 0 : watermark_;
  return s;
}

}  // namespace dc
