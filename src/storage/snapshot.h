// Copyright 2026 The DataCell Authors.
//
// Consistent checkpoints of factory progress (docs/DURABILITY.md). A
// snapshot deliberately stores only what the WAL tail cannot recompute —
// per-query progress cursors, shared-node origins, and the basket
// horizons the WALs were last truncated to. Windows, RollingJoinIndex
// contents and grid partial caches are all rebuilt by replaying basket
// rows through the normal append path (the fuzzy-checkpoint tradeoff
// from Li et al.'s consistent-snapshot survey: tiny checkpoint writes,
// recovery cost proportional to the retained WAL tail).
//
// Snapshots are written tmp + fsync + atomic rename, and the previous
// snapshot is kept as snapshot.prev.dc: WALs are only truncated to the
// *previous* checkpoint's horizons, so either retained snapshot pairs
// with a WAL tail that covers it.

#ifndef DATACELL_STORAGE_SNAPSHOT_H_
#define DATACELL_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace dc {
namespace storage {

/// The recomputation-free progress of one factory: where each input
/// started (origin row seqs), which emission is due next, the per-batch
/// cursor, and how many emissions were produced. Captured by
/// Factory::SnapshotProgress and re-applied (before the factory ever
/// fires) by Factory::RestoreProgress.
struct FactoryProgress {
  std::vector<uint64_t> origins;
  bool has_next_emission = false;
  int64_t next_emission = 0;
  uint64_t batch_cursor = 0;
  uint64_t emissions = 0;
};

struct SnapshotBasket {
  std::string name;
  uint64_t horizon = 0;  // DropHorizon at checkpoint time
};

struct SnapshotQuery {
  uint64_t token = 0;  // catalog-log submit token
  FactoryProgress progress;
};

struct SnapshotNode {
  std::string label;  // deterministic "<stream>#<ordinal>" node label
  uint64_t origin_seq = 0;
};

struct SnapshotData {
  uint64_t checkpoint_id = 0;
  std::vector<SnapshotBasket> baskets;
  std::vector<SnapshotQuery> queries;
  std::vector<SnapshotNode> nodes;
};

std::string SnapshotPath(const std::string& dir);
std::string SnapshotPrevPath(const std::string& dir);

/// Writes `dir`/snapshot.dc atomically: tmp file + fsync + rotate the
/// current snapshot to snapshot.prev.dc + rename tmp into place. A crash
/// at any point leaves at least one complete snapshot on disk.
Status WriteSnapshot(WalEnv* env, const std::string& dir,
                     const SnapshotData& data,
                     monitor::Counter* bytes_counter = nullptr);

/// Loads the newest complete snapshot: snapshot.dc, falling back to
/// snapshot.prev.dc if the current one is torn or corrupt. NotFound when
/// neither file exists (a cold start); Internal when snapshots exist but
/// none parses (unrecoverable — the WAL tail alone is not sufficient
/// once a checkpoint has truncated it).
Result<SnapshotData> LoadSnapshot(const std::string& dir);

}  // namespace storage
}  // namespace dc

#endif  // DATACELL_STORAGE_SNAPSHOT_H_
