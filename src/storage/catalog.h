// Copyright 2026 The DataCell Authors.
//
// Catalog: the name registry the binder resolves FROM clauses against.
// Tracks persistent tables and stream definitions (a stream's data lives in
// its basket, owned by the DataCell engine; the catalog holds the schema
// and the designated event-time column).

#ifndef DATACELL_STORAGE_CATALOG_H_
#define DATACELL_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"
#include "util/result.h"
#include "util/sync.h"

namespace dc {

/// Definition of a registered stream.
struct StreamDef {
  std::string name;
  Schema schema;
  /// Index of the event-time column (type TS) used for RANGE windows, or
  /// SIZE_MAX if the stream has none (only ROWS windows allowed then).
  size_t ts_column = SIZE_MAX;

  bool HasEventTime() const { return ts_column != SIZE_MAX; }
};

/// Thread-safe name registry of tables and streams. Names share one
/// namespace (a stream and a table may not collide).
class Catalog {
 public:
  Status RegisterTable(TablePtr table);
  Status RegisterStream(StreamDef def);

  Result<TablePtr> GetTable(std::string_view name) const;
  Result<StreamDef> GetStream(std::string_view name) const;

  bool IsStream(std::string_view name) const;
  bool IsTable(std::string_view name) const;

  Status DropTable(std::string_view name);
  Status DropStream(std::string_view name);

  std::vector<std::string> TableNames() const;
  std::vector<std::string> StreamNames() const;

 private:
  bool NameTakenLocked(const std::string& name) const DC_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kCatalog};
  std::map<std::string, TablePtr> tables_ DC_GUARDED_BY(mu_);
  std::map<std::string, StreamDef> streams_ DC_GUARDED_BY(mu_);
};

}  // namespace dc

#endif  // DATACELL_STORAGE_CATALOG_H_
