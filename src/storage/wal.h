// Copyright 2026 The DataCell Authors.
//
// Per-basket write-ahead log (docs/DURABILITY.md). Every stream basket
// gets an append-only log of its batch-ordinal history (the PR 2 batch
// log is the unit of logging), and the engine keeps one extra "catalog"
// log of DDL and continuous-query submissions. Records are
// length-prefixed and CRC32-checksummed; a reader stops at the first
// invalid record, so a torn tail degrades to a shorter-but-consistent
// prefix instead of garbage.
//
// All file I/O goes through the injectable WalEnv/WalFile abstraction so
// the crash-point harness (tests/crash_util.h) can buffer unsynced
// writes, tear them mid-record, and swallow renames deterministically.
//
// Locking: WalWriter::mu_ has rank kWal (105) — above kBasket (100), so
// the basket append hook may log while holding the basket lock, and the
// same mutex serializes catalog-log appends from the submit path (which
// runs under kSharingRegistry/kEngine, both < 105).

#ifndef DATACELL_STORAGE_WAL_H_
#define DATACELL_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/bat/bat.h"
#include "src/monitor/metrics.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace dc {
namespace storage {

/// IEEE CRC32 over `n` bytes (table-based, no dependencies).
uint32_t Crc32(const void* data, size_t n);

// --------------------------------------------------------------------------
// Injectable file abstraction.
// --------------------------------------------------------------------------

/// An append-only file handle. The default implementation writes through
/// to the filesystem immediately and fsyncs on Sync(); test
/// implementations may buffer appends and lose them on simulated crash.
class WalFile {
 public:
  virtual ~WalFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Makes all appended bytes durable (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem operations the durability layer performs. All paths are
/// plain strings; the engine never touches the filesystem except through
/// the WalEnv configured in EngineOptions::durability.
class WalEnv {
 public:
  virtual ~WalEnv() = default;
  /// Opens `path` for appending, creating it if missing. `truncate`
  /// discards existing contents.
  virtual Result<std::unique_ptr<WalFile>> Open(const std::string& path,
                                                bool truncate) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Makes directory-entry updates under `path` durable (fsync of the
  /// directory itself). Without it, a rename or file creation whose
  /// CONTENTS were fsynced can still vanish on power loss — the entry
  /// lives in the parent directory, not the file. Called after the
  /// snapshot rotation renames, after a log rewrite's rename, and after
  /// creating a fresh log file.
  virtual Status SyncDir(const std::string& path) = 0;
  /// Truncates `path` to exactly `len` bytes (drops a corrupt tail).
  virtual Status TruncateFile(const std::string& path, uint64_t len) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// mkdir -p.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// The real-filesystem environment (process-lifetime singleton).
  static WalEnv* Default();
};

// --------------------------------------------------------------------------
// Record framing and codecs.
// --------------------------------------------------------------------------

/// Record type tags. Basket logs use 1-9, the catalog log 10-19,
/// snapshot files 30-39 (see snapshot.h).
enum class WalRecordType : uint8_t {
  // Basket log.
  kReset = 1,      // {start_seq u64, next_ordinal u64, watermark i64,
                   //  sealed u8} — log starts here; written at creation
                   //  and rewritten at the head on truncation.
  kBatch = 2,      // {ordinal u64, begin_seq u64, rows u64, ncols u32,
                   //  cols...} — one appended batch, post-clamp values.
  kHeartbeat = 3,  // {ts i64}
  kSeal = 4,       // {}
  // Catalog log.
  kStatement = 10,  // {sql str} — DDL / table DML, re-executed on replay.
  kSubmit = 11,     // continuous-query submission (see WalSubmit).
  kRemove = 12,     // {token u64}
};

/// One decoded record: the type tag plus the payload bytes after it.
struct WalRecord {
  WalRecordType type = WalRecordType::kReset;
  std::string body;
};

/// Little-endian append-only byte sink used by all record codecs.
class WalEncoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  void PutStr(std::string_view s);  // u32 length prefix + bytes
  void PutBytes(const void* data, size_t n);
  std::string Take() { return std::move(buf_); }
  const std::string& buf() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader; underflow latches ok()==false
/// and all further Gets return zero values.
class WalDecoder {
 public:
  explicit WalDecoder(std::string_view data) : data_(data) {}
  bool ok() const { return ok_; }
  bool Done() const { return pos_ == data_.size(); }
  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetF64();
  std::string GetStr();
  std::string_view GetBytes(size_t n);

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Serializes one column (values + null bitmap) for a kBatch record.
void EncodeBat(WalEncoder& enc, const Bat& b);
/// Decodes one column; nullptr Result on malformed input.
Result<BatPtr> DecodeBat(WalDecoder& dec);

/// kReset payload: where the log starts and the basket state (watermark,
/// sealed flag) accumulated by everything truncated away before it.
struct WalReset {
  uint64_t start_seq = 0;
  uint64_t next_ordinal = 0;
  int64_t watermark = INT64_MIN;
  bool sealed = false;
};

/// Decoded kBatch payload.
struct WalBatch {
  uint64_t ordinal = 0;
  uint64_t begin_seq = 0;
  uint64_t rows = 0;
  std::vector<BatPtr> cols;
};

/// kSubmit payload: everything needed to re-run SubmitContinuous
/// deterministically plus the initial factory progress (per-input basket
/// origins) captured right after the original submit validated.
struct WalSubmit {
  uint64_t token = 0;  // submit sequence number, assigned by the engine
  std::string sql;
  uint8_t mode = 0;  // core::ExecMode
  std::string name;  // user-provided query name ("" = engine default)
  std::vector<uint64_t> origins;
  uint64_t batch_cursor = 0;
  std::string node_label;   // "" = this submit created no shared node
  uint64_t node_origin = 0;  // the node's origin_seq at creation
};

std::string EncodeReset(const WalReset& r);
std::string EncodeBatch(uint64_t ordinal, uint64_t begin_seq, uint64_t rows,
                        const std::vector<BatPtr>& cols);
std::string EncodeHeartbeat(int64_t ts);
std::string EncodeSeal();
std::string EncodeStatement(std::string_view sql);
std::string EncodeSubmit(const WalSubmit& s);
std::string EncodeRemove(uint64_t token);

Result<WalReset> DecodeReset(const WalRecord& rec);
Result<WalBatch> DecodeBatch(const WalRecord& rec);
Result<int64_t> DecodeHeartbeat(const WalRecord& rec);
Result<std::string> DecodeStatement(const WalRecord& rec);
Result<WalSubmit> DecodeSubmit(const WalRecord& rec);
Result<uint64_t> DecodeRemove(const WalRecord& rec);

/// Frames `payload` as [u32 len][u32 crc][payload] — what WalWriter
/// appends and ReadWalFile parses. Exposed for the fuzzer.
std::string FrameRecord(std::string_view payload);

/// 8-byte magic at offset 0 of every WAL and snapshot file.
inline constexpr char kWalMagic[8] = {'D', 'C', 'W', 'A', 'L', '0', '0', '1'};

/// Result of scanning a log file: every record up to the first invalid
/// byte, the length of that valid prefix, and whether the scan consumed
/// the whole file (clean_tail == false means a torn/corrupt tail was
/// dropped at `valid_bytes`).
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  bool clean_tail = true;
};

/// Reads a log file from the real filesystem (recovery always reads what
/// actually survived). Missing file -> NotFound. A file without a valid
/// magic scans as zero records with valid_bytes == 0.
Result<WalScan> ReadWalFile(const std::string& path);

// --------------------------------------------------------------------------
// WalWriter.
// --------------------------------------------------------------------------

/// When appends are made durable. kInterval syncs every
/// `fsync_interval` records; checkpoints always force a sync.
enum class FsyncPolicy { kNever, kInterval, kAlways };

/// Shared metric handles, resolved once by the engine.
struct WalCounters {
  std::shared_ptr<monitor::Counter> records;
  std::shared_ptr<monitor::Counter> bytes;
  std::shared_ptr<monitor::Counter> syncs;
  std::shared_ptr<monitor::Counter> truncations;
};

/// Appends framed records to one log file under its own kWal mutex.
/// Thread-safe; used both by basket hooks (under the basket lock) and by
/// the engine's submit path for the catalog log.
class WalWriter {
 public:
  /// Opens `path` for appending. A missing file is created with the
  /// magic header; an existing file with a corrupt tail is truncated to
  /// its valid prefix first so new appends extend the good bytes.
  static Result<std::unique_ptr<WalWriter>> Open(WalEnv* env, std::string path,
                                                 FsyncPolicy policy,
                                                 int fsync_interval,
                                                 WalCounters counters);

  /// Appends one framed record and applies the fsync policy.
  Status Append(std::string_view payload);

  /// Forces all appended records durable regardless of policy.
  Status Sync();

  /// Rewrites the log, dropping every batch wholly below `horizon` and
  /// folding the dropped prefix (watermark advances, ordinal/seq
  /// positions, seal) into a fresh kReset head record. Atomic via
  /// tmp + rename; the writer continues on the rewritten file.
  Status TruncateTo(uint64_t horizon);

  const std::string& path() const { return path_; }

 private:
  WalWriter(WalEnv* env, std::string path, FsyncPolicy policy,
            int fsync_interval, WalCounters counters)
      : env_(env),
        path_(std::move(path)),
        policy_(policy),
        fsync_interval_(fsync_interval < 1 ? 1 : fsync_interval),
        counters_(std::move(counters)) {}

  Status SyncLocked() DC_REQUIRES(mu_);

  WalEnv* const env_;
  const std::string path_;
  const FsyncPolicy policy_;
  const int fsync_interval_;
  WalCounters counters_;

  Mutex mu_{LockRank::kWal};
  std::unique_ptr<WalFile> file_ DC_GUARDED_BY(mu_);
  int unsynced_ DC_GUARDED_BY(mu_) = 0;
};

}  // namespace storage
}  // namespace dc

#endif  // DATACELL_STORAGE_WAL_H_
