// Copyright 2026 The DataCell Authors.

#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace dc {
namespace storage {

namespace {

/// Records larger than this are treated as corruption (a torn length
/// field must not trigger a gigabyte allocation).
constexpr uint32_t kMaxRecordBytes = 1u << 30;

/// Parent directory of `path` ("." when there is no separator), for the
/// directory fsyncs that make renames and file creations durable.
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return slash == 0 ? "/" : path.substr(0, slash);
}

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --------------------------------------------------------------------------
// Default (real filesystem) environment.
// --------------------------------------------------------------------------

namespace {

class PosixWalFile : public WalFile {
 public:
  explicit PosixWalFile(int fd) : fd_(fd) {}
  ~PosixWalFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(
            StrFormat("wal write failed: %s", std::strerror(errno)));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(
          StrFormat("wal fsync failed: %s", std::strerror(errno)));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return Status::Internal(
          StrFormat("wal close failed: %s", std::strerror(errno)));
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixWalEnv : public WalEnv {
 public:
  Result<std::unique_ptr<WalFile>> Open(const std::string& path,
                                        bool truncate) override {
    int flags = O_CREAT | O_WRONLY | O_APPEND;
    if (truncate) flags |= O_TRUNC;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::Internal(
          StrFormat("open %s failed: %s", path.c_str(), std::strerror(errno)));
    }
    return {std::make_unique<PosixWalFile>(fd)};
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal(StrFormat("rename %s -> %s failed: %s",
                                        from.c_str(), to.c_str(),
                                        std::strerror(errno)));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal(StrFormat("unlink %s failed: %s", path.c_str(),
                                        std::strerror(errno)));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return Status::Internal(StrFormat("open dir %s failed: %s",
                                        path.c_str(), std::strerror(errno)));
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return Status::Internal(StrFormat("fsync dir %s failed: %s",
                                        path.c_str(), std::strerror(errno)));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t len) override {
    if (::truncate(path.c_str(), static_cast<off_t>(len)) != 0) {
      return Status::Internal(StrFormat("truncate %s failed: %s", path.c_str(),
                                        std::strerror(errno)));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status CreateDirs(const std::string& path) override {
    for (size_t i = 1; i <= path.size(); ++i) {
      if (i < path.size() && path[i] != '/') continue;
      const std::string partial = path.substr(0, i);
      if (partial.empty() || partial == "/") continue;
      if (::mkdir(partial.c_str(), 0755) == 0) {
        // The new entry lives in the parent; fsync it so the directory
        // itself survives power loss.
        DC_RETURN_NOT_OK(SyncDir(DirName(partial)));
      } else if (errno != EEXIST) {
        return Status::Internal(StrFormat("mkdir %s failed: %s",
                                          partial.c_str(),
                                          std::strerror(errno)));
      }
    }
    return Status::OK();
  }
};

}  // namespace

WalEnv* WalEnv::Default() {
  static PosixWalEnv* env = new PosixWalEnv();
  return env;
}

// --------------------------------------------------------------------------
// Encoder / decoder.
// --------------------------------------------------------------------------

void WalEncoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void WalEncoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void WalEncoder::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WalEncoder::PutStr(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

void WalEncoder::PutBytes(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

uint8_t WalDecoder::GetU8() {
  if (!ok_ || pos_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t WalDecoder::GetU32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetU8()) << (8 * i);
  return ok_ ? v : 0;
}

uint64_t WalDecoder::GetU64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetU8()) << (8 * i);
  return ok_ ? v : 0;
}

double WalDecoder::GetF64() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string WalDecoder::GetStr() {
  const uint32_t n = GetU32();
  return std::string(GetBytes(n));
}

std::string_view WalDecoder::GetBytes(size_t n) {
  if (!ok_ || pos_ + n > data_.size()) {
    ok_ = false;
    return {};
  }
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

// --------------------------------------------------------------------------
// Column codec.
// --------------------------------------------------------------------------

void EncodeBat(WalEncoder& enc, const Bat& b) {
  const uint64_t n = b.size();
  enc.PutU8(static_cast<uint8_t>(b.type()));
  enc.PutU64(n);
  const bool nulls = b.has_nulls();
  enc.PutU8(nulls ? 1 : 0);
  if (nulls) {
    for (uint64_t i = 0; i < n; ++i) enc.PutU8(b.IsNull(i) ? 1 : 0);
  }
  switch (b.type()) {
    case TypeId::kBool:
      enc.PutBytes(b.BoolData().data(), n);
      break;
    case TypeId::kI64:
    case TypeId::kTs:
      for (int64_t v : b.I64Data()) enc.PutI64(v);
      break;
    case TypeId::kF64:
      for (double v : b.F64Data()) enc.PutF64(v);
      break;
    case TypeId::kStr:
      for (uint64_t i = 0; i < n; ++i) enc.PutStr(b.StrAt(i));
      break;
  }
}

Result<BatPtr> DecodeBat(WalDecoder& dec) {
  const uint8_t type_raw = dec.GetU8();
  const uint64_t n = dec.GetU64();
  const bool nulls = dec.GetU8() != 0;
  if (!dec.ok() || type_raw > static_cast<uint8_t>(TypeId::kTs)) {
    return Status::ParseError("wal: malformed column header");
  }
  if (n > kMaxRecordBytes) {
    return Status::ParseError("wal: implausible column length");
  }
  const TypeId type = static_cast<TypeId>(type_raw);
  std::vector<uint8_t> null_flags;
  if (nulls) {
    null_flags.resize(n);
    for (uint64_t i = 0; i < n; ++i) null_flags[i] = dec.GetU8();
  }
  BatPtr out = Bat::MakeEmpty(type);
  for (uint64_t i = 0; i < n; ++i) {
    if (nulls && null_flags[i]) {
      // Consume the zero payload the encoder wrote, then append NULL.
      switch (type) {
        case TypeId::kBool:
          dec.GetU8();
          break;
        case TypeId::kI64:
        case TypeId::kTs:
          dec.GetI64();
          break;
        case TypeId::kF64:
          dec.GetF64();
          break;
        case TypeId::kStr:
          dec.GetStr();
          break;
      }
      out->AppendNull();
      continue;
    }
    switch (type) {
      case TypeId::kBool:
        out->AppendBool(dec.GetU8() != 0);
        break;
      case TypeId::kI64:
      case TypeId::kTs:
        out->AppendI64(dec.GetI64());
        break;
      case TypeId::kF64:
        out->AppendF64(dec.GetF64());
        break;
      case TypeId::kStr:
        out->AppendStr(dec.GetStr());
        break;
    }
  }
  if (!dec.ok()) return Status::ParseError("wal: truncated column payload");
  return out;
}

// --------------------------------------------------------------------------
// Record codecs.
// --------------------------------------------------------------------------

namespace {

std::string WithType(WalRecordType t, WalEncoder enc) {
  WalEncoder out;
  out.PutU8(static_cast<uint8_t>(t));
  const std::string body = enc.Take();
  out.PutBytes(body.data(), body.size());
  return out.Take();
}

Result<WalDecoder> BodyDecoder(const WalRecord& rec, WalRecordType want) {
  if (rec.type != want) return Status::ParseError("wal: record type mismatch");
  return WalDecoder(rec.body);
}

}  // namespace

std::string EncodeReset(const WalReset& r) {
  WalEncoder enc;
  enc.PutU64(r.start_seq);
  enc.PutU64(r.next_ordinal);
  enc.PutI64(r.watermark);
  enc.PutU8(r.sealed ? 1 : 0);
  return WithType(WalRecordType::kReset, std::move(enc));
}

std::string EncodeBatch(uint64_t ordinal, uint64_t begin_seq, uint64_t rows,
                        const std::vector<BatPtr>& cols) {
  WalEncoder enc;
  enc.PutU64(ordinal);
  enc.PutU64(begin_seq);
  enc.PutU64(rows);
  enc.PutU32(static_cast<uint32_t>(cols.size()));
  for (const BatPtr& c : cols) EncodeBat(enc, *c);
  return WithType(WalRecordType::kBatch, std::move(enc));
}

std::string EncodeHeartbeat(int64_t ts) {
  WalEncoder enc;
  enc.PutI64(ts);
  return WithType(WalRecordType::kHeartbeat, std::move(enc));
}

std::string EncodeSeal() {
  return WithType(WalRecordType::kSeal, WalEncoder());
}

std::string EncodeStatement(std::string_view sql) {
  WalEncoder enc;
  enc.PutStr(sql);
  return WithType(WalRecordType::kStatement, std::move(enc));
}

std::string EncodeSubmit(const WalSubmit& s) {
  WalEncoder enc;
  enc.PutU64(s.token);
  enc.PutStr(s.sql);
  enc.PutU8(s.mode);
  enc.PutStr(s.name);
  enc.PutU32(static_cast<uint32_t>(s.origins.size()));
  for (uint64_t o : s.origins) enc.PutU64(o);
  enc.PutU64(s.batch_cursor);
  enc.PutStr(s.node_label);
  enc.PutU64(s.node_origin);
  return WithType(WalRecordType::kSubmit, std::move(enc));
}

std::string EncodeRemove(uint64_t token) {
  WalEncoder enc;
  enc.PutU64(token);
  return WithType(WalRecordType::kRemove, std::move(enc));
}

Result<WalReset> DecodeReset(const WalRecord& rec) {
  DC_ASSIGN_OR_RETURN(WalDecoder dec, BodyDecoder(rec, WalRecordType::kReset));
  WalReset r;
  r.start_seq = dec.GetU64();
  r.next_ordinal = dec.GetU64();
  r.watermark = dec.GetI64();
  r.sealed = dec.GetU8() != 0;
  if (!dec.ok()) return Status::ParseError("wal: malformed reset record");
  return r;
}

Result<WalBatch> DecodeBatch(const WalRecord& rec) {
  DC_ASSIGN_OR_RETURN(WalDecoder dec, BodyDecoder(rec, WalRecordType::kBatch));
  WalBatch b;
  b.ordinal = dec.GetU64();
  b.begin_seq = dec.GetU64();
  b.rows = dec.GetU64();
  const uint32_t ncols = dec.GetU32();
  if (!dec.ok() || ncols > 4096) {
    return Status::ParseError("wal: malformed batch header");
  }
  b.cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    DC_ASSIGN_OR_RETURN(BatPtr col, DecodeBat(dec));
    if (col->size() != b.rows) {
      return Status::ParseError("wal: batch column row-count mismatch");
    }
    b.cols.push_back(std::move(col));
  }
  if (!dec.Done()) return Status::ParseError("wal: trailing batch bytes");
  return b;
}

Result<int64_t> DecodeHeartbeat(const WalRecord& rec) {
  DC_ASSIGN_OR_RETURN(WalDecoder dec,
                      BodyDecoder(rec, WalRecordType::kHeartbeat));
  const int64_t ts = dec.GetI64();
  if (!dec.ok()) return Status::ParseError("wal: malformed heartbeat");
  return ts;
}

Result<std::string> DecodeStatement(const WalRecord& rec) {
  DC_ASSIGN_OR_RETURN(WalDecoder dec,
                      BodyDecoder(rec, WalRecordType::kStatement));
  std::string sql = dec.GetStr();
  if (!dec.ok()) return Status::ParseError("wal: malformed statement record");
  return sql;
}

Result<WalSubmit> DecodeSubmit(const WalRecord& rec) {
  DC_ASSIGN_OR_RETURN(WalDecoder dec, BodyDecoder(rec, WalRecordType::kSubmit));
  WalSubmit s;
  s.token = dec.GetU64();
  s.sql = dec.GetStr();
  s.mode = dec.GetU8();
  s.name = dec.GetStr();
  const uint32_t n = dec.GetU32();
  if (!dec.ok() || n > 4096) {
    return Status::ParseError("wal: malformed submit record");
  }
  s.origins.reserve(n);
  for (uint32_t i = 0; i < n; ++i) s.origins.push_back(dec.GetU64());
  s.batch_cursor = dec.GetU64();
  s.node_label = dec.GetStr();
  s.node_origin = dec.GetU64();
  if (!dec.ok()) return Status::ParseError("wal: malformed submit record");
  return s;
}

Result<uint64_t> DecodeRemove(const WalRecord& rec) {
  DC_ASSIGN_OR_RETURN(WalDecoder dec, BodyDecoder(rec, WalRecordType::kRemove));
  const uint64_t token = dec.GetU64();
  if (!dec.ok()) return Status::ParseError("wal: malformed remove record");
  return token;
}

// --------------------------------------------------------------------------
// File scan.
// --------------------------------------------------------------------------

std::string FrameRecord(std::string_view payload) {
  WalEncoder enc;
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload.data(), payload.size()));
  enc.PutBytes(payload.data(), payload.size());
  return enc.Take();
}

Result<WalScan> ReadWalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(StrFormat("wal file %s not found", path.c_str()));
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  WalScan scan;
  if (data.size() < sizeof(kWalMagic) ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    scan.valid_bytes = 0;
    scan.clean_tail = data.empty();
    return scan;
  }
  size_t pos = sizeof(kWalMagic);
  scan.valid_bytes = pos;
  while (pos < data.size()) {
    if (pos + 8 > data.size()) break;
    WalDecoder hdr(std::string_view(data).substr(pos, 8));
    const uint32_t len = hdr.GetU32();
    const uint32_t crc = hdr.GetU32();
    if (len == 0 || len > kMaxRecordBytes || pos + 8 + len > data.size()) break;
    const std::string_view payload = std::string_view(data).substr(pos + 8, len);
    if (Crc32(payload.data(), payload.size()) != crc) break;
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(static_cast<uint8_t>(payload[0]));
    rec.body = std::string(payload.substr(1));
    scan.records.push_back(std::move(rec));
    pos += 8 + len;
    scan.valid_bytes = pos;
  }
  scan.clean_tail = scan.valid_bytes == data.size();
  return scan;
}

// --------------------------------------------------------------------------
// WalWriter.
// --------------------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(WalEnv* env,
                                                   std::string path,
                                                   FsyncPolicy policy,
                                                   int fsync_interval,
                                                   WalCounters counters) {
  bool fresh = !env->FileExists(path);
  if (!fresh) {
    // Drop a corrupt tail so new records extend the valid prefix. The
    // scan reads the real file: anything a simulated crash never
    // persisted is (correctly) not there.
    Result<WalScan> scan = ReadWalFile(path);
    if (scan.ok()) {
      if (scan.value().valid_bytes == 0) {
        fresh = true;  // no valid magic — rewrite from scratch
      } else if (!scan.value().clean_tail) {
        DC_RETURN_NOT_OK(env->TruncateFile(path, scan.value().valid_bytes));
      }
    } else {
      fresh = true;
    }
  }
  std::unique_ptr<WalWriter> w(new WalWriter(
      env, std::move(path), policy, fsync_interval, std::move(counters)));
  DC_ASSIGN_OR_RETURN(std::unique_ptr<WalFile> file,
                      env->Open(w->path_, /*truncate=*/fresh));
  {
    MutexLock lock(w->mu_);
    w->file_ = std::move(file);
    if (fresh) {
      DC_RETURN_NOT_OK(
          w->file_->Append(std::string_view(kWalMagic, sizeof(kWalMagic))));
    }
  }
  if (fresh) {
    // A freshly created log is durable only once its directory ENTRY is:
    // fsyncing the file alone does not survive power loss of the parent.
    DC_RETURN_NOT_OK(env->SyncDir(DirName(w->path_)));
  }
  return w;
}

Status WalWriter::Append(std::string_view payload) {
  const std::string framed = FrameRecord(payload);
  MutexLock lock(mu_);
  if (file_ == nullptr) return Status::Internal("wal writer closed");
  DC_RETURN_NOT_OK(file_->Append(framed));
  if (counters_.records) counters_.records->Add(1);
  if (counters_.bytes) counters_.bytes->Add(framed.size());
  switch (policy_) {
    case FsyncPolicy::kNever:
      break;
    case FsyncPolicy::kAlways:
      DC_RETURN_NOT_OK(SyncLocked());
      break;
    case FsyncPolicy::kInterval:
      if (++unsynced_ >= fsync_interval_) DC_RETURN_NOT_OK(SyncLocked());
      break;
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  MutexLock lock(mu_);
  if (file_ == nullptr) return Status::Internal("wal writer closed");
  return SyncLocked();
}

Status WalWriter::SyncLocked() {
  DC_RETURN_NOT_OK(file_->Sync());
  unsynced_ = 0;
  if (counters_.syncs) counters_.syncs->Add(1);
  return Status::OK();
}

Status WalWriter::TruncateTo(uint64_t horizon) {
  MutexLock lock(mu_);
  if (file_ == nullptr) return Status::Internal("wal writer closed");
  // Flush so the rewrite below sees every record appended so far.
  DC_RETURN_NOT_OK(SyncLocked());
  DC_ASSIGN_OR_RETURN(WalScan scan, ReadWalFile(path_));

  // Fold the dropped prefix into a fresh reset record. Heartbeat
  // watermarks fold exactly; dropped batch timestamps need no folding
  // because the basket clamps appends to be globally non-decreasing, so
  // any surviving row revives at least the dropped rows' watermark (see
  // docs/DURABILITY.md, "Truncation").
  WalReset reset;
  size_t keep_from = scan.records.size();
  for (size_t i = 0; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    if (rec.type == WalRecordType::kReset) {
      DC_ASSIGN_OR_RETURN(reset, DecodeReset(rec));
      continue;
    }
    if (rec.type == WalRecordType::kHeartbeat) {
      DC_ASSIGN_OR_RETURN(const int64_t ts, DecodeHeartbeat(rec));
      if (ts > reset.watermark) reset.watermark = ts;
      continue;
    }
    if (rec.type == WalRecordType::kSeal) {
      reset.sealed = true;
      continue;
    }
    if (rec.type == WalRecordType::kBatch) {
      DC_ASSIGN_OR_RETURN(WalBatch b, DecodeBatch(rec));
      const uint64_t end_seq = b.begin_seq + b.rows;
      const bool droppable =
          b.rows > 0 ? end_seq <= horizon : b.begin_seq < horizon;
      if (!droppable) {
        keep_from = i;
        break;
      }
      reset.start_seq = end_seq;
      reset.next_ordinal = b.ordinal + 1;
      continue;
    }
    // Unknown record type in a basket log: keep it and everything after.
    keep_from = i;
    break;
  }

  const std::string tmp = path_ + ".tmp";
  DC_ASSIGN_OR_RETURN(std::unique_ptr<WalFile> out,
                      env_->Open(tmp, /*truncate=*/true));
  DC_RETURN_NOT_OK(out->Append(std::string_view(kWalMagic, sizeof(kWalMagic))));
  DC_RETURN_NOT_OK(out->Append(FrameRecord(EncodeReset(reset))));
  for (size_t i = keep_from; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    std::string payload;
    payload.push_back(static_cast<char>(rec.type));
    payload.append(rec.body);
    DC_RETURN_NOT_OK(out->Append(FrameRecord(payload)));
  }
  DC_RETURN_NOT_OK(out->Sync());
  DC_RETURN_NOT_OK(out->Close());
  DC_RETURN_NOT_OK(file_->Close());
  file_ = nullptr;
  DC_RETURN_NOT_OK(env_->Rename(tmp, path_));
  // Make the rename durable before appending to the rewritten file.
  DC_RETURN_NOT_OK(env_->SyncDir(DirName(path_)));
  DC_ASSIGN_OR_RETURN(file_, env_->Open(path_, /*truncate=*/false));
  unsynced_ = 0;
  if (counters_.truncations) counters_.truncations->Add(1);
  return Status::OK();
}

}  // namespace storage
}  // namespace dc
