#include "storage/catalog.h"

#include "util/string_util.h"

namespace dc {

bool Catalog::NameTakenLocked(const std::string& name) const {
  return tables_.count(name) > 0 || streams_.count(name) > 0;
}

Status Catalog::RegisterTable(TablePtr table) {
  MutexLock lock(mu_);
  if (NameTakenLocked(table->name())) {
    return Status::AlreadyExists(
        StrFormat("name '%s' already in catalog", table->name().c_str()));
  }
  tables_.emplace(table->name(), std::move(table));
  return Status::OK();
}

Status Catalog::RegisterStream(StreamDef def) {
  MutexLock lock(mu_);
  if (NameTakenLocked(def.name)) {
    return Status::AlreadyExists(
        StrFormat("name '%s' already in catalog", def.name.c_str()));
  }
  if (def.ts_column != SIZE_MAX) {
    if (def.ts_column >= def.schema.NumColumns()) {
      return Status::InvalidArgument("ts_column out of range");
    }
    if (def.schema.column(def.ts_column).type != TypeId::kTs) {
      return Status::TypeError("designated event-time column must be TS");
    }
  }
  const std::string name = def.name;
  streams_.emplace(name, std::move(def));
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("no table named '%.*s'",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return it->second;
}

Result<StreamDef> Catalog::GetStream(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = streams_.find(std::string(name));
  if (it == streams_.end()) {
    return Status::NotFound(StrFormat("no stream named '%.*s'",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return it->second;
}

bool Catalog::IsStream(std::string_view name) const {
  MutexLock lock(mu_);
  return streams_.count(std::string(name)) > 0;
}

bool Catalog::IsTable(std::string_view name) const {
  MutexLock lock(mu_);
  return tables_.count(std::string(name)) > 0;
}

Status Catalog::DropTable(std::string_view name) {
  MutexLock lock(mu_);
  if (tables_.erase(std::string(name)) == 0) {
    return Status::NotFound("table not found");
  }
  return Status::OK();
}

Status Catalog::DropStream(std::string_view name) {
  MutexLock lock(mu_);
  if (streams_.erase(std::string(name)) == 0) {
    return Status::NotFound("stream not found");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [k, v] : tables_) out.push_back(k);
  return out;
}

std::vector<std::string> Catalog::StreamNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [k, v] : streams_) out.push_back(k);
  return out;
}

}  // namespace dc
