#include "storage/index.h"

#include "util/string_util.h"

namespace dc {

Result<std::shared_ptr<const HashIndex>> HashIndex::Build(const Bat& col,
                                                          uint64_t version) {
  auto idx = std::shared_ptr<HashIndex>(new HashIndex(col.type(), version));
  idx->entries_ = col.size();
  switch (col.type()) {
    case TypeId::kI64:
    case TypeId::kTs: {
      auto data = col.I64Data();
      idx->int_map_.reserve(data.size());
      for (Oid o = 0; o < data.size(); ++o) idx->int_map_[data[o]].push_back(o);
      break;
    }
    case TypeId::kF64: {
      auto data = col.F64Data();
      idx->dbl_map_.reserve(data.size());
      for (Oid o = 0; o < data.size(); ++o) idx->dbl_map_[data[o]].push_back(o);
      break;
    }
    case TypeId::kStr: {
      idx->str_map_.reserve(col.size());
      for (Oid o = 0; o < col.size(); ++o) {
        idx->str_map_[std::string(col.StrAt(o))].push_back(o);
      }
      break;
    }
    case TypeId::kBool:
      return Status::TypeError("hash index over bool column is pointless");
  }
  return std::shared_ptr<const HashIndex>(idx);
}

Result<Candidates> HashIndex::Lookup(const Value& key) const {
  switch (key_type_) {
    case TypeId::kI64:
    case TypeId::kTs: {
      DC_ASSIGN_OR_RETURN(Value k, key.CastTo(TypeId::kI64));
      auto it = int_map_.find(k.AsI64());
      if (it == int_map_.end()) return Candidates();
      return Candidates::FromVector(it->second);
    }
    case TypeId::kF64: {
      if (!IsNumeric(key.type())) {
        return Status::TypeError("f64 index lookup needs numeric key");
      }
      auto it = dbl_map_.find(key.NumericAsDouble());
      if (it == dbl_map_.end()) return Candidates();
      return Candidates::FromVector(it->second);
    }
    case TypeId::kStr: {
      if (key.type() != TypeId::kStr) {
        return Status::TypeError("str index lookup needs string key");
      }
      auto it = str_map_.find(key.AsStr());
      if (it == str_map_.end()) return Candidates();
      return Candidates::FromVector(it->second);
    }
    case TypeId::kBool:
      break;
  }
  return Status::Internal("HashIndex::Lookup: bad index type");
}

}  // namespace dc
