// Copyright 2026 The DataCell Authors.
//
// Persistent tables: read-mostly reference data that continuous queries
// join against streams ("Two Query Paradigms" in the paper). Tables use
// copy-on-write versioning: readers take an O(1) immutable snapshot;
// writers build a new version. This lets factories run against a stable
// version while one-time INSERTs proceed — appends are comparatively
// expensive, which matches the read-mostly role of warehouse tables here.

#ifndef DATACELL_STORAGE_TABLE_H_
#define DATACELL_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "util/result.h"
#include "util/sync.h"

namespace dc {

/// One immutable version of a table's data. Never mutated once published.
struct TableVersion {
  uint64_t version = 0;
  std::vector<BatPtr> cols;

  uint64_t NumRows() const { return cols.empty() ? 0 : cols[0]->size(); }
};

using TableVersionPtr = std::shared_ptr<const TableVersion>;

/// A named persistent table.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Current row count (of the latest version).
  uint64_t NumRows() const;

  /// O(1) immutable snapshot for readers.
  TableVersionPtr Snapshot() const;

  /// Appends one row (COW: clones columns). Type-checked.
  Status AppendRow(const std::vector<Value>& row);

  /// Appends a batch of rows given as columns (COW once for the batch).
  Status AppendColumns(const std::vector<BatPtr>& cols);

  /// Returns (building it on first use) a hash index over `column` for the
  /// current version. The index is version-stamped: it is rebuilt
  /// transparently after appends.
  Result<std::shared_ptr<const HashIndex>> GetHashIndex(
      std::string_view column);

 private:
  Status CheckColumnsMatch(const std::vector<BatPtr>& cols) const;

  const std::string name_;
  const Schema schema_;

  mutable Mutex mu_{LockRank::kTable};
  TableVersionPtr current_ DC_GUARDED_BY(mu_);
  // column index -> cached index (version-stamped).
  std::vector<std::shared_ptr<const HashIndex>> hash_indexes_
      DC_GUARDED_BY(mu_);
};

using TablePtr = std::shared_ptr<Table>;

/// Builds the initial version of a table from host vectors, bypassing COW.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row; type-checked against the schema.
  Status AddRow(const std::vector<Value>& row);

  /// Produces the table; the builder is consumed.
  Result<TablePtr> Build(std::string name) &&;

 private:
  Schema schema_;
  std::vector<BatPtr> cols_;
};

}  // namespace dc

#endif  // DATACELL_STORAGE_TABLE_H_
