// Copyright 2026 The DataCell Authors.
//
// Secondary indexes over table columns — "exploiting standard DBMS
// functionalities in a streaming environment such as indexing" (paper §1).
// A HashIndex accelerates equi-lookups (point predicates and the build side
// of stream-table joins); indexes are immutable and stamped with the table
// version they were built from.

#ifndef DATACELL_STORAGE_INDEX_H_
#define DATACELL_STORAGE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc {

/// Immutable hash index over one column of one table version.
class HashIndex {
 public:
  /// Builds over all rows of `col`. `version` stamps the source version.
  static Result<std::shared_ptr<const HashIndex>> Build(const Bat& col,
                                                        uint64_t version);

  /// Sorted candidate list of rows where col = key (empty if none).
  /// TypeError if key type is incompatible with the indexed column.
  Result<Candidates> Lookup(const Value& key) const;

  uint64_t version() const { return version_; }
  TypeId key_type() const { return key_type_; }
  size_t NumEntries() const { return entries_; }

 private:
  HashIndex(TypeId t, uint64_t version) : key_type_(t), version_(version) {}

  TypeId key_type_;
  uint64_t version_;
  size_t entries_ = 0;
  // Key hash -> oids; collisions resolved by re-checking against the column
  // would need the column, so we key on exact values instead.
  std::unordered_map<int64_t, std::vector<Oid>> int_map_;
  std::unordered_map<double, std::vector<Oid>> dbl_map_;
  std::unordered_map<std::string, std::vector<Oid>> str_map_;
};

}  // namespace dc

#endif  // DATACELL_STORAGE_INDEX_H_
