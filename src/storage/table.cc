#include "storage/table.h"

#include "util/string_util.h"

namespace dc {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  auto v = std::make_shared<TableVersion>();
  v->version = 1;
  for (const ColumnDef& c : schema_.columns()) {
    v->cols.push_back(Bat::MakeEmpty(c.type));
  }
  current_ = v;
  hash_indexes_.resize(schema_.NumColumns());
}

uint64_t Table::NumRows() const { return Snapshot()->NumRows(); }

TableVersionPtr Table::Snapshot() const {
  MutexLock lock(mu_);
  return current_;
}

Status Table::CheckColumnsMatch(const std::vector<BatPtr>& cols) const {
  if (cols.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("table %s: expected %zu columns, got %zu", name_.c_str(),
                  schema_.NumColumns(), cols.size()));
  }
  const uint64_t n = cols.empty() ? 0 : cols[0]->size();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i]->type() != schema_.column(i).type) {
      return Status::TypeError(
          StrFormat("table %s column %zu: expected %s, got %s", name_.c_str(),
                    i, TypeName(schema_.column(i).type),
                    TypeName(cols[i]->type())));
    }
    if (cols[i]->size() != n) {
      return Status::InvalidArgument("ragged append batch");
    }
  }
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& row) {
  std::vector<BatPtr> batch;
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("table %s: expected %zu values, got %zu", name_.c_str(),
                  schema_.NumColumns(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    DC_ASSIGN_OR_RETURN(Value v, row[i].CastTo(schema_.column(i).type));
    auto col = Bat::MakeEmpty(schema_.column(i).type);
    col->AppendValue(v);
    batch.push_back(col);
  }
  return AppendColumns(batch);
}

Status Table::AppendColumns(const std::vector<BatPtr>& cols) {
  DC_RETURN_NOT_OK(CheckColumnsMatch(cols));
  MutexLock lock(mu_);
  auto next = std::make_shared<TableVersion>();
  next->version = current_->version + 1;
  next->cols.reserve(schema_.NumColumns());
  for (size_t i = 0; i < schema_.NumColumns(); ++i) {
    // COW: clone the old column, then bulk-append the batch.
    auto col = std::make_shared<Bat>(*current_->cols[i]);
    col->AppendRange(*cols[i], 0, cols[i]->size());
    next->cols.push_back(col);
  }
  current_ = next;
  return Status::OK();
}

Result<std::shared_ptr<const HashIndex>> Table::GetHashIndex(
    std::string_view column) {
  DC_ASSIGN_OR_RETURN(size_t ci, schema_.Find(column));
  TableVersionPtr snap;
  {
    MutexLock lock(mu_);
    if (hash_indexes_[ci] != nullptr &&
        hash_indexes_[ci]->version() == current_->version) {
      return hash_indexes_[ci];
    }
    snap = current_;
  }
  // Build outside the lock; publish if still current.
  DC_ASSIGN_OR_RETURN(auto idx, HashIndex::Build(*snap->cols[ci],
                                                 snap->version));
  MutexLock lock(mu_);
  if (snap->version == current_->version) hash_indexes_[ci] = idx;
  return idx;
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  for (const ColumnDef& c : schema_.columns()) {
    cols_.push_back(Bat::MakeEmpty(c.type));
  }
}

Status TableBuilder::AddRow(const std::vector<Value>& row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("TableBuilder: wrong arity");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    DC_ASSIGN_OR_RETURN(Value v, row[i].CastTo(schema_.column(i).type));
    cols_[i]->AppendValue(v);
  }
  return Status::OK();
}

Result<TablePtr> TableBuilder::Build(std::string name) && {
  auto table = std::make_shared<Table>(std::move(name), schema_);
  DC_RETURN_NOT_OK(table->AppendColumns(cols_));
  return table;
}

}  // namespace dc
