#include "storage/schema.h"

#include "util/string_util.h"

namespace dc {

Status Schema::AddColumn(std::string name, TypeId type) {
  if (Has(name)) {
    return Status::AlreadyExists(
        StrFormat("column '%s' already defined", name.c_str()));
  }
  cols_.push_back(ColumnDef{std::move(name), type});
  return Status::OK();
}

Result<size_t> Schema::Find(std::string_view name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  return Status::NotFound(StrFormat("no column named '%.*s'",
                                    static_cast<int>(name.size()),
                                    name.data()));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols_[i].name;
    out += " ";
    out += TypeName(cols_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace dc
