// Copyright 2026 The DataCell Authors.
//
// Relational schemas shared by persistent tables, streams and baskets.

#ifndef DATACELL_STORAGE_SCHEMA_H_
#define DATACELL_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "bat/types.h"
#include "util/result.h"

namespace dc {

/// One attribute: name + logical type.
struct ColumnDef {
  std::string name;
  TypeId type;

  bool operator==(const ColumnDef&) const = default;
};

/// Ordered attribute list. Column names are unique (case-sensitive after
/// the SQL layer lower-cases identifiers).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> cols) : cols_(std::move(cols)) {}

  /// Appends a column; AlreadyExists if the name is taken.
  Status AddColumn(std::string name, TypeId type);

  size_t NumColumns() const { return cols_.size(); }
  const ColumnDef& column(size_t i) const { return cols_[i]; }
  const std::vector<ColumnDef>& columns() const { return cols_; }

  /// Index of `name`, or NotFound.
  Result<size_t> Find(std::string_view name) const;
  bool Has(std::string_view name) const { return Find(name).ok(); }

  /// "(a i64, b str)".
  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<ColumnDef> cols_;
};

}  // namespace dc

#endif  // DATACELL_STORAGE_SCHEMA_H_
