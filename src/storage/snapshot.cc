// Copyright 2026 The DataCell Authors.

#include "storage/snapshot.h"

#include <utility>

#include "util/string_util.h"

namespace dc {
namespace storage {

namespace {

/// Snapshot record tags (30-39; basket/catalog logs use 1-19).
enum class SnapTag : uint8_t {
  kHeader = 30,  // {checkpoint_id u64}
  kBasket = 31,  // {name str, horizon u64}
  kQuery = 32,   // {token u64, progress}
  kNode = 33,    // {label str, origin u64}
  kFooter = 39,  // {records-before-footer u64} — completeness check
};

std::string EncodeSnapRecord(SnapTag tag, WalEncoder body) {
  WalEncoder out;
  out.PutU8(static_cast<uint8_t>(tag));
  const std::string b = body.Take();
  out.PutBytes(b.data(), b.size());
  return out.Take();
}

Result<SnapshotData> ParseSnapshot(const WalScan& scan) {
  if (!scan.clean_tail || scan.records.empty()) {
    return Status::ParseError("snapshot: torn or empty file");
  }
  SnapshotData data;
  bool saw_header = false;
  bool saw_footer = false;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    const auto tag = static_cast<SnapTag>(rec.type);
    WalDecoder dec(rec.body);
    switch (tag) {
      case SnapTag::kHeader:
        data.checkpoint_id = dec.GetU64();
        saw_header = true;
        break;
      case SnapTag::kBasket: {
        SnapshotBasket b;
        b.name = dec.GetStr();
        b.horizon = dec.GetU64();
        data.baskets.push_back(std::move(b));
        break;
      }
      case SnapTag::kQuery: {
        SnapshotQuery q;
        q.token = dec.GetU64();
        const uint32_t n = dec.GetU32();
        if (n > 4096) return Status::ParseError("snapshot: origin overflow");
        q.progress.origins.reserve(n);
        for (uint32_t j = 0; j < n; ++j)
          q.progress.origins.push_back(dec.GetU64());
        q.progress.has_next_emission = dec.GetU8() != 0;
        q.progress.next_emission = dec.GetI64();
        q.progress.batch_cursor = dec.GetU64();
        q.progress.emissions = dec.GetU64();
        data.queries.push_back(std::move(q));
        break;
      }
      case SnapTag::kNode: {
        SnapshotNode nd;
        nd.label = dec.GetStr();
        nd.origin_seq = dec.GetU64();
        data.nodes.push_back(std::move(nd));
        break;
      }
      case SnapTag::kFooter: {
        const uint64_t count = dec.GetU64();
        if (count != i) {
          return Status::ParseError("snapshot: footer count mismatch");
        }
        if (i + 1 != scan.records.size()) {
          return Status::ParseError("snapshot: records after footer");
        }
        saw_footer = true;
        break;
      }
      default:
        return Status::ParseError("snapshot: unknown record tag");
    }
    if (!dec.ok()) return Status::ParseError("snapshot: malformed record");
  }
  if (!saw_header || !saw_footer) {
    return Status::ParseError("snapshot: incomplete (missing header/footer)");
  }
  return data;
}

}  // namespace

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.dc";
}

std::string SnapshotPrevPath(const std::string& dir) {
  return dir + "/snapshot.prev.dc";
}

Status WriteSnapshot(WalEnv* env, const std::string& dir,
                     const SnapshotData& data,
                     monitor::Counter* bytes_counter) {
  std::string blob(kWalMagic, sizeof(kWalMagic));
  uint64_t records = 0;
  auto add = [&](SnapTag tag, WalEncoder body) {
    blob += FrameRecord(EncodeSnapRecord(tag, std::move(body)));
    ++records;
  };

  {
    WalEncoder enc;
    enc.PutU64(data.checkpoint_id);
    add(SnapTag::kHeader, std::move(enc));
  }
  for (const SnapshotBasket& b : data.baskets) {
    WalEncoder enc;
    enc.PutStr(b.name);
    enc.PutU64(b.horizon);
    add(SnapTag::kBasket, std::move(enc));
  }
  for (const SnapshotQuery& q : data.queries) {
    WalEncoder enc;
    enc.PutU64(q.token);
    enc.PutU32(static_cast<uint32_t>(q.progress.origins.size()));
    for (uint64_t o : q.progress.origins) enc.PutU64(o);
    enc.PutU8(q.progress.has_next_emission ? 1 : 0);
    enc.PutI64(q.progress.next_emission);
    enc.PutU64(q.progress.batch_cursor);
    enc.PutU64(q.progress.emissions);
    add(SnapTag::kQuery, std::move(enc));
  }
  for (const SnapshotNode& n : data.nodes) {
    WalEncoder enc;
    enc.PutStr(n.label);
    enc.PutU64(n.origin_seq);
    add(SnapTag::kNode, std::move(enc));
  }
  {
    WalEncoder enc;
    enc.PutU64(records);
    add(SnapTag::kFooter, std::move(enc));
  }

  const std::string current = SnapshotPath(dir);
  const std::string prev = SnapshotPrevPath(dir);
  const std::string tmp = current + ".tmp";
  {
    DC_ASSIGN_OR_RETURN(std::unique_ptr<WalFile> f,
                        env->Open(tmp, /*truncate=*/true));
    DC_RETURN_NOT_OK(f->Append(blob));
    DC_RETURN_NOT_OK(f->Sync());
    DC_RETURN_NOT_OK(f->Close());
  }
  // Rotate: the old current becomes the fallback, then the new snapshot
  // lands atomically. A crash between the renames leaves current absent
  // but prev complete; LoadSnapshot handles both orders. The rotation is
  // durable only once the directory entries are fsynced — without the
  // SyncDir, power loss can roll both renames back even though the
  // snapshot contents hit disk.
  if (env->FileExists(current)) {
    DC_RETURN_NOT_OK(env->Rename(current, prev));
  }
  DC_RETURN_NOT_OK(env->Rename(tmp, current));
  DC_RETURN_NOT_OK(env->SyncDir(dir));
  if (bytes_counter != nullptr) bytes_counter->Add(blob.size());
  return Status::OK();
}

Result<SnapshotData> LoadSnapshot(const std::string& dir) {
  const std::string current = SnapshotPath(dir);
  const std::string prev = SnapshotPrevPath(dir);
  bool any_exists = false;
  for (const std::string& path : {current, prev}) {
    Result<WalScan> scan = ReadWalFile(path);
    if (!scan.ok()) continue;  // missing — try the fallback
    any_exists = true;
    Result<SnapshotData> parsed = ParseSnapshot(scan.value());
    if (parsed.ok()) return parsed;
  }
  if (!any_exists) {
    return Status::NotFound("no snapshot (cold start)");
  }
  // A snapshot was written at some point (so WALs may be truncated) but
  // none parses: replaying the WAL tail alone could silently produce
  // wrong emissions, so refuse instead.
  return Status::Internal("all snapshots corrupt; refusing partial recovery");
}

}  // namespace storage
}  // namespace dc
